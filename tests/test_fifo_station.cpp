// FifoStation unit tests, including the canonical M/M/1 validation: an
// open Poisson-fed exponential station must reproduce W = 1/(mu-lambda)
// and L = rho/(1-rho) — the same formulas the analytical model uses
// (eq. 16), so this test ties the simulation substrate to the theory.

#include <gtest/gtest.h>

#include <vector>

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/simcore/fifo_station.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::simcore;

TEST(FifoStation, ServesJobsFifoWithDeterministicService) {
  Simulator sim;
  FifoStation station(sim, "S", [](const FifoStation::Job&) { return 5.0; });
  std::vector<std::uint64_t> completed;
  std::vector<double> waits;
  station.set_departure_callback([&](const FifoStation::Departure& d) {
    completed.push_back(d.job.id);
    waits.push_back(d.wait_time);
  });
  station.arrive(1);
  station.arrive(2);
  station.arrive(3);
  sim.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(waits, (std::vector<double>{0.0, 5.0, 10.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
  EXPECT_EQ(station.departures(), 3u);
  EXPECT_FALSE(station.busy());
}

TEST(FifoStation, TracksQueueLength) {
  Simulator sim;
  FifoStation station(sim, "S", [](const FifoStation::Job&) { return 10.0; });
  station.arrive(1);
  station.arrive(2);
  EXPECT_EQ(station.queue_length(), 2u);  // one in service + one waiting
  EXPECT_TRUE(station.busy());
  sim.run();
  EXPECT_EQ(station.queue_length(), 0u);
}

TEST(FifoStation, UtilizationIsBusyFraction) {
  Simulator sim;
  FifoStation station(sim, "S", [](const FifoStation::Job&) { return 2.0; });
  station.set_departure_callback([](const FifoStation::Departure&) {});
  // One job served in [0,2); then idle until we advance the clock to 4.
  station.arrive(1);
  sim.run();
  sim.schedule_after(2.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  EXPECT_DOUBLE_EQ(station.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(station.average_number_in_system(), 0.5);
}

TEST(FifoStation, RejectsInvalidSetup) {
  Simulator sim;
  EXPECT_THROW(
      FifoStation(sim, "S", FifoStation::ServiceSampler{}),
      hmcs::ConfigError);
  FifoStation bad(sim, "S", [](const FifoStation::Job&) { return -1.0; });
  // Service starts immediately on arrival at an idle station, so the
  // negative sample is rejected right there.
  EXPECT_THROW(bad.arrive(1), hmcs::ConfigError);
}

TEST(FifoStation, ResetStatisticsKeepsInFlightWork) {
  Simulator sim;
  FifoStation station(sim, "S", [](const FifoStation::Job&) { return 3.0; });
  int departures_seen = 0;
  station.set_departure_callback(
      [&](const FifoStation::Departure&) { ++departures_seen; });
  station.arrive(1);
  station.arrive(2);
  sim.run_until(1.0);
  station.reset_statistics();
  sim.run();
  EXPECT_EQ(departures_seen, 2);
  // Only the post-reset departures are counted in the statistics.
  EXPECT_EQ(station.departures(), 2u);
  EXPECT_EQ(station.arrivals(), 0u);
}

// ------------------------------------------------- M/M/1 law validation

struct Mm1Case {
  double lambda;  // arrivals per us
  double mu;      // service rate per us
};

class Mm1Validation : public ::testing::TestWithParam<Mm1Case> {};

TEST_P(Mm1Validation, MatchesTheory) {
  const auto [lambda, mu] = GetParam();
  Simulator sim;
  Rng arrival_rng(101);
  Rng service_rng(202);
  FifoStation station(sim, "mm1", [&](const FifoStation::Job&) {
    return service_rng.exponential(1.0 / mu);
  });

  Tally responses;
  station.set_departure_callback([&](const FifoStation::Departure& d) {
    responses.add(d.response_time);
  });

  constexpr std::uint64_t kWarmup = 5000;
  constexpr std::uint64_t kTotal = 120000;
  std::uint64_t arrivals = 0;
  std::function<void()> arrive = [&] {
    if (arrivals == kWarmup) station.reset_statistics();
    if (arrivals++ < kTotal) {
      station.arrive(arrivals);
      sim.schedule_after(arrival_rng.exponential(1.0 / lambda), arrive);
    }
  };
  sim.schedule_after(arrival_rng.exponential(1.0 / lambda), arrive);
  sim.run();

  namespace mm1 = hmcs::analytic::mm1;
  const double w_theory = mm1::response_time(lambda, mu);
  const double l_theory = mm1::number_in_system(lambda, mu);
  const double rho = mm1::utilization(lambda, mu);

  // Post-warm-up station statistics against theory; tolerance loosens
  // with utilization because M/M/1 converges slowly near saturation.
  const double tol = rho < 0.6 ? 0.05 : 0.15;
  EXPECT_NEAR(station.response_times().mean(), w_theory, tol * w_theory);
  EXPECT_NEAR(station.utilization(), rho, tol * rho);
  EXPECT_NEAR(station.average_number_in_system(), l_theory, tol * l_theory);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, Mm1Validation,
    ::testing::Values(Mm1Case{0.2, 1.0}, Mm1Case{0.5, 1.0}, Mm1Case{0.8, 1.0},
                      Mm1Case{0.0005, 0.00662},  // FE @ 1024B scale
                      Mm1Case{0.9, 1.0}),
    [](const ::testing::TestParamInfo<Mm1Case>& param_info) {
      return "rho" +
             std::to_string(static_cast<int>(100.0 * param_info.param.lambda /
                                             param_info.param.mu));
    });

}  // namespace
