// End-to-end smoke test: the full stack (config -> analytical model ->
// simulator) runs on a small paper-like configuration and the two
// estimates agree to simulation noise.

#include <gtest/gtest.h>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"

namespace {

using namespace hmcs;

TEST(Smoke, AnalysisAndSimulationAgreeOnSmallSystem) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, /*clusters=*/4,
      analytic::NetworkArchitecture::kNonBlocking, /*message_bytes=*/512.0,
      /*total_nodes=*/32, /*rate_per_us=*/1e-4);

  const analytic::LatencyPrediction prediction =
      analytic::predict_latency(config);
  EXPECT_GT(prediction.mean_latency_us, 0.0);

  sim::SimOptions options;
  options.measured_messages = 4000;
  options.warmup_messages = 500;
  sim::MultiClusterSim simulator(config, options);
  const sim::SimResult result = simulator.run();

  EXPECT_GT(result.mean_latency_us, 0.0);
  EXPECT_NEAR(result.mean_latency_us, prediction.mean_latency_us,
              0.25 * prediction.mean_latency_us);
}

}  // namespace
