// Multi-cluster job scheduler: deterministic placement scenarios, policy
// semantics, backfill, conservation properties.

#include <gtest/gtest.h>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/jobs/job_workload.hpp"
#include "hmcs/jobs/scheduler.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::jobs;

analytic::SystemConfig small_system() {
  // 4 clusters x 8 nodes, light background traffic.
  return analytic::paper_scenario(analytic::HeterogeneityCase::kCase1, 4,
                                  analytic::NetworkArchitecture::kNonBlocking,
                                  1024.0, 32, 1e-5);
}

Job make_job(std::uint64_t id, double arrival_us, std::uint32_t tasks,
             double work_us, double messages = 0.0) {
  Job job;
  job.id = id;
  job.arrival_us = arrival_us;
  job.tasks = tasks;
  job.work_us = work_us;
  job.messages_per_task = messages;
  return job;
}

TEST(Scheduler, SingleJobRunsImmediately) {
  MultiClusterScheduler scheduler(small_system(), {});
  const ScheduleResult result = scheduler.run({make_job(0, 100.0, 8, 5000.0)});
  ASSERT_EQ(result.metrics.completed, 1u);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_DOUBLE_EQ(outcome.start_us, 100.0);
  EXPECT_DOUBLE_EQ(outcome.wait_us(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.runtime_us, 5000.0);  // no messages
  EXPECT_EQ(outcome.placement.clusters_used(), 1u);
}

TEST(Scheduler, FcfsQueuesWhenMachineFull) {
  // Two 32-task jobs: the second must wait for the first to finish.
  MultiClusterScheduler scheduler(small_system(), {});
  const ScheduleResult result = scheduler.run(
      {make_job(0, 0.0, 32, 1000.0), make_job(1, 10.0, 32, 1000.0)});
  ASSERT_EQ(result.metrics.completed, 2u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_us, 1000.0);
  EXPECT_DOUBLE_EQ(result.metrics.makespan_us, 2000.0);
}

TEST(Scheduler, SingleClusterPolicyRejectsOversizedJobs) {
  SchedulerOptions options;
  options.policy = PlacementPolicy::kSingleCluster;
  MultiClusterScheduler scheduler(small_system(), options);
  const ScheduleResult result =
      scheduler.run({make_job(0, 0.0, 16, 1000.0)});  // > 8 per cluster
  EXPECT_EQ(result.metrics.completed, 0u);
  EXPECT_EQ(result.metrics.rejected, 1u);
}

TEST(Scheduler, CoAllocationSpansClusters) {
  SchedulerOptions options;
  options.policy = PlacementPolicy::kCoAllocation;
  MultiClusterScheduler scheduler(small_system(), options);
  const ScheduleResult result =
      scheduler.run({make_job(0, 0.0, 16, 1000.0, 10.0)});
  ASSERT_EQ(result.metrics.completed, 1u);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.placement.total(), 16u);
  EXPECT_EQ(outcome.placement.clusters_used(), 2u);
  EXPECT_GT(outcome.communication_us, 0.0);
  // Spanning placement pays remote latency: comm above the all-local
  // price of the same job.
  const double local_price = 10.0 * scheduler.intra_latency_us();
  EXPECT_GT(outcome.communication_us, local_price);
}

TEST(Scheduler, SingleClusterFirstPrefersLocalPlacement) {
  SchedulerOptions options;
  options.policy = PlacementPolicy::kSingleClusterFirst;
  MultiClusterScheduler scheduler(small_system(), options);
  const ScheduleResult result = scheduler.run(
      {make_job(0, 0.0, 8, 1000.0, 10.0), make_job(1, 0.0, 16, 1000.0, 10.0)});
  ASSERT_EQ(result.metrics.completed, 2u);
  EXPECT_EQ(result.outcomes[0].placement.clusters_used(), 1u);  // fits
  EXPECT_EQ(result.outcomes[1].placement.clusters_used(), 2u);  // spills
  EXPECT_DOUBLE_EQ(result.outcomes[0].communication_us,
                   10.0 * scheduler.intra_latency_us());
}

TEST(Scheduler, CommunicationSlowsSpanningJobsOnly) {
  SchedulerOptions span;
  span.policy = PlacementPolicy::kCoAllocation;
  SchedulerOptions local;
  local.policy = PlacementPolicy::kSingleCluster;
  // 8-task job with heavy messaging: fits either way.
  const std::vector<Job> jobs{make_job(0, 0.0, 8, 1000.0, 1000.0)};
  MultiClusterScheduler local_sched(small_system(), local);
  const double local_runtime =
      local_sched.run(jobs).outcomes[0].runtime_us;
  // Co-allocation's greedy most-free split keeps it in one cluster too
  // (8 fits), so runtimes agree — the policy only spans when forced.
  MultiClusterScheduler span_sched(small_system(), span);
  EXPECT_DOUBLE_EQ(span_sched.run(jobs).outcomes[0].runtime_us,
                   local_runtime);
}

TEST(Scheduler, BackfillLetsSmallJobsOvertake) {
  // Head job needs the whole machine; a small job behind it fits now.
  SchedulerOptions fcfs;
  SchedulerOptions backfill;
  backfill.backfill = true;
  const std::vector<Job> jobs{
      make_job(0, 0.0, 24, 1000.0),   // occupies 3 clusters
      make_job(1, 10.0, 32, 1000.0),  // whole machine: must wait
      make_job(2, 20.0, 8, 500.0),    // fits in the free cluster
  };
  MultiClusterScheduler strict(small_system(), fcfs);
  MultiClusterScheduler relaxed(small_system(), backfill);
  const ScheduleResult strict_result = strict.run(jobs);
  const ScheduleResult relaxed_result = relaxed.run(jobs);

  auto start_of = [](const ScheduleResult& result, std::uint64_t id) {
    for (const JobOutcome& outcome : result.outcomes) {
      if (outcome.job.id == id) return outcome.start_us;
    }
    return -1.0;
  };
  // Strict FCFS: job 2 waits behind job 1.
  EXPECT_GE(start_of(strict_result, 2), start_of(strict_result, 1));
  // Backfill: job 2 starts immediately at its arrival.
  EXPECT_DOUBLE_EQ(start_of(relaxed_result, 2), 20.0);
  EXPECT_LT(start_of(relaxed_result, 2), start_of(relaxed_result, 1));
}

TEST(Scheduler, UtilizationAndConservation) {
  const auto jobs = generate_jobs(
      [] {
        WorkloadSpec spec;
        spec.mean_interarrival_us = 20e3;
        spec.min_tasks = 2;
        spec.max_tasks = 16;
        spec.mean_work_us = 80e3;
        spec.messages_per_task = 50.0;
        spec.seed = 13;
        return spec;
      }(),
      400);
  SchedulerOptions options;
  options.policy = PlacementPolicy::kSingleClusterFirst;
  options.backfill = true;
  MultiClusterScheduler scheduler(small_system(), options);
  const ScheduleResult result = scheduler.run(jobs);
  EXPECT_EQ(result.metrics.completed + result.metrics.rejected, 400u);
  EXPECT_GT(result.metrics.utilization, 0.0);
  EXPECT_LE(result.metrics.utilization, 1.0);
  EXPECT_GE(result.metrics.mean_bounded_slowdown, 1.0 - 1e-9);
  for (const JobOutcome& outcome : result.outcomes) {
    EXPECT_GE(outcome.start_us, outcome.job.arrival_us);
    EXPECT_EQ(outcome.placement.total(), outcome.job.tasks);
    EXPECT_DOUBLE_EQ(outcome.finish_us,
                     outcome.start_us + outcome.runtime_us);
  }
}

TEST(Scheduler, RejectsUnsortedJobs) {
  MultiClusterScheduler scheduler(small_system(), {});
  EXPECT_THROW(scheduler.run({make_job(0, 100.0, 4, 10.0),
                              make_job(1, 50.0, 4, 10.0)}),
               hmcs::ConfigError);
}

TEST(Scheduler, RemoteLatencyExceedsIntraLatency) {
  MultiClusterScheduler scheduler(small_system(), {});
  EXPECT_GT(scheduler.remote_latency_us(), scheduler.intra_latency_us());
}

}  // namespace
