// Fault-tolerant sweep execution (docs/ROBUSTNESS.md): per-cell error
// isolation under collect-all, the deterministic retry protocol,
// cooperative deadlines, sweep cancellation, validity guardrails, and
// the checkpoint journal's interrupted-run → resume → bit-identical
// contract — all asserted at 1 and 8 worker threads.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include "hmcs/runner/fault_injection.hpp"
#include "hmcs/runner/journal.hpp"
#include "hmcs/runner/sweep_report.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using runner::Backend;
using runner::CellStatus;
using runner::FailurePolicy;
using runner::FaultInjectionBackend;
using runner::PointContext;
using runner::PointResult;
using runner::RunnerOptions;
using runner::SweepResult;
using runner::SweepSpec;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.id = "ft";
  spec.axes.clusters = {1, 2, 4, 8};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.base_seed = 11;
  return spec;
}

std::shared_ptr<FaultInjectionBackend> make_faulty(
    FaultInjectionBackend::Options options) {
  return std::make_shared<FaultInjectionBackend>(std::move(options));
}

/// Synthetic backend whose results trip the validity guardrails on
/// chosen points.
class SuspectBackend : public Backend {
 public:
  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig&,
                      const PointContext& ctx) const override {
    PointResult result;
    result.mean_latency_us = 10.0 + static_cast<double>(ctx.index);
    if (ctx.index == 1) result.converged = false;
    if (ctx.index == 2) result.max_center_utilization = 1.0;
    if (ctx.index == 3) result.max_center_utilization = 0.97;
    return result;
  }

 private:
  std::string name_ = "suspect";
};

// ---------------------------------------------------------------------
// Isolation: a throwing / NaN cell fails alone under collect-all, and
// the surviving cells are identical at 1 and 8 threads.

TEST(FaultTolerance, CollectAllIsolatesFaultyCells) {
  for (const std::uint32_t threads : {1u, 8u}) {
    FaultInjectionBackend::Options faults;
    faults.throw_config_on = {2};
    faults.throw_logic_on = {5};
    faults.nan_on = {6};
    const auto backend = make_faulty(faults);

    RunnerOptions options;
    options.threads = threads;
    options.on_error = FailurePolicy::kCollectAll;
    const SweepResult result = run_sweep(small_spec(), {backend}, options);

    ASSERT_EQ(result.cells.size(), 8u);
    EXPECT_EQ(result.at(2, 0).status, CellStatus::kFailed);
    EXPECT_NE(result.at(2, 0).error.find("config fault at point 2"),
              std::string::npos);
    EXPECT_EQ(result.at(5, 0).status, CellStatus::kFailed);
    // A NaN mean is a guardrail demotion, not a failure: the cell ran.
    EXPECT_EQ(result.at(6, 0).status, CellStatus::kDegraded);
    EXPECT_NE(result.at(6, 0).error.find("non-finite"), std::string::npos);
    for (const std::size_t p : {0u, 1u, 3u, 4u, 7u}) {
      EXPECT_EQ(result.at(p, 0).status, CellStatus::kOk) << "point " << p;
      EXPECT_EQ(result.at(p, 0).attempts, 1u);
      EXPECT_TRUE(std::isfinite(result.at(p, 0).mean_latency_us));
    }
    EXPECT_EQ(result.count_status(CellStatus::kFailed), 2u);
    EXPECT_EQ(result.count_status(CellStatus::kDegraded), 1u);
    EXPECT_FALSE(result.all_evaluated());
  }
}

TEST(FaultTolerance, CollectAllCsvIsByteIdenticalAcrossThreadCounts) {
  std::string reference;
  for (const std::uint32_t threads : {1u, 8u}) {
    FaultInjectionBackend::Options faults;
    faults.throw_config_on = {2};
    faults.nan_on = {6};
    RunnerOptions options;
    options.threads = threads;
    options.on_error = FailurePolicy::kCollectAll;
    const std::string csv =
        runner::sweep_csv(run_sweep(small_spec(), {make_faulty(faults)},
                                    options))
            .to_string();
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference);
    }
  }
  EXPECT_NE(reference.find("failed"), std::string::npos);
  EXPECT_NE(reference.find("degraded"), std::string::npos);
}

TEST(FaultTolerance, FailFastRethrowsTheInjectedType) {
  FaultInjectionBackend::Options faults;
  faults.throw_logic_on = {3};
  for (const std::uint32_t threads : {1u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    options.on_error = FailurePolicy::kFailFast;
    EXPECT_THROW(run_sweep(small_spec(), {make_faulty(faults)}, options),
                 LogicError);
  }
}

// ---------------------------------------------------------------------
// Retry: transient faults heal within the attempt budget, and every
// attempt's seed follows retry_point_seed exactly.

TEST(FaultTolerance, RetryHealsTransientFaultsDeterministically) {
  for (const std::uint32_t threads : {1u, 8u}) {
    FaultInjectionBackend::Options faults;
    faults.throw_logic_on = {3};
    faults.heal_after_attempts = 1;  // attempt 1 faults, attempt 2 heals
    const auto backend = make_faulty(faults);

    RunnerOptions options;
    options.threads = threads;
    options.on_error = FailurePolicy::kCollectAll;
    options.max_attempts = 3;
    const SweepResult result = run_sweep(small_spec(), {backend}, options);

    EXPECT_EQ(result.at(3, 0).status, CellStatus::kOk);
    EXPECT_EQ(result.at(3, 0).attempts, 2u);
    EXPECT_TRUE(result.all_evaluated());

    // The call log (sorted by point, attempt) is scheduling-independent:
    // 8 single-attempt points plus one retry.
    const auto calls = backend->calls();
    ASSERT_EQ(calls.size(), 9u);
    for (const auto& call : calls) {
      EXPECT_EQ(call.seed,
                runner::retry_point_seed(result.points[call.point].seed,
                                         call.attempt));
    }
    // Attempt 1 uses the point seed verbatim (the no-fault bit-identity
    // guarantee); attempt 2 re-derives through SplitMix64.
    const std::uint64_t point_seed = result.points[3].seed;
    EXPECT_EQ(runner::retry_point_seed(point_seed, 1), point_seed);
    simcore::SplitMix64 mix(point_seed ^ 2u);
    EXPECT_EQ(runner::retry_point_seed(point_seed, 2), mix.next());
  }
}

TEST(FaultTolerance, PersistentFaultExhaustsTheAttemptBudget) {
  FaultInjectionBackend::Options faults;
  faults.throw_logic_on = {3};  // heal_after_attempts = 0: faults forever
  const auto backend = make_faulty(faults);

  RunnerOptions options;
  options.threads = 2;
  options.on_error = FailurePolicy::kCollectAll;
  options.max_attempts = 3;
  const SweepResult result = run_sweep(small_spec(), {backend}, options);

  EXPECT_EQ(result.at(3, 0).status, CellStatus::kFailed);
  EXPECT_EQ(result.at(3, 0).attempts, 3u);
  EXPECT_EQ(backend->calls().size(), 7u + 3u);
}

// ---------------------------------------------------------------------
// Deadline and cancellation.

TEST(FaultTolerance, DeadlineMarksHangingCellTimedOut) {
  for (const std::uint32_t threads : {1u, 8u}) {
    FaultInjectionBackend::Options faults;
    faults.hang_on = {1};
    RunnerOptions options;
    options.threads = threads;
    options.on_error = FailurePolicy::kCollectAll;
    options.cell_deadline_ms = 25.0;
    const SweepResult result =
        run_sweep(small_spec(), {make_faulty(faults)}, options);

    EXPECT_EQ(result.at(1, 0).status, CellStatus::kTimedOut);
    EXPECT_EQ(result.count_status(CellStatus::kOk), 7u);
  }
}

TEST(FaultTolerance, TimedOutCellTriggersFailFast) {
  FaultInjectionBackend::Options faults;
  faults.hang_on = {1};
  RunnerOptions options;
  options.threads = 2;
  options.on_error = FailurePolicy::kFailFast;
  options.cell_deadline_ms = 25.0;
  EXPECT_THROW(run_sweep(small_spec(), {make_faulty(faults)}, options),
               DeadlineExceeded);
}

TEST(FaultTolerance, SweepCancelSkipsRemainingCells) {
  FaultInjectionBackend::Options faults;
  faults.hang_on = {0};  // first point hangs until the sweep is cancelled
  const auto backend = make_faulty(faults);

  util::CancelToken interrupt;
  RunnerOptions options;
  options.threads = 1;  // serial: nothing after the hang can have run
  options.cancel = &interrupt;
  std::thread canceller([&interrupt] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    interrupt.cancel();
  });
  const SweepResult result = run_sweep(small_spec(), {backend}, options);
  canceller.join();

  // No throw even under fail-fast: the caller gets the partial grid.
  EXPECT_EQ(result.count_status(CellStatus::kSkipped), 8u);
  EXPECT_EQ(result.at(0, 0).status, CellStatus::kSkipped);
}

// ---------------------------------------------------------------------
// Validity guardrails.

TEST(FaultTolerance, GuardrailsDemoteSuspectResults) {
  RunnerOptions options;
  options.threads = 1;
  const SweepResult result =
      run_sweep(small_spec(), {std::make_shared<SuspectBackend>()}, options);

  EXPECT_EQ(result.at(0, 0).status, CellStatus::kOk);
  EXPECT_EQ(result.at(1, 0).status, CellStatus::kDegraded);
  EXPECT_NE(result.at(1, 0).error.find("converge"), std::string::npos);
  EXPECT_EQ(result.at(2, 0).status, CellStatus::kDegraded);
  EXPECT_NE(result.at(2, 0).error.find("saturated"), std::string::npos);
  // Below the threshold: not degraded.
  EXPECT_EQ(result.at(3, 0).status, CellStatus::kOk);
  // Degraded cells keep their numbers and never trip fail-fast.
  EXPECT_TRUE(result.all_evaluated());
  EXPECT_DOUBLE_EQ(result.at(1, 0).mean_latency_us, 11.0);
}

TEST(FaultTolerance, GuardrailThresholdIsConfigurable) {
  RunnerOptions options;
  options.threads = 1;
  options.degraded_utilization = 0.95;
  const SweepResult result =
      run_sweep(small_spec(), {std::make_shared<SuspectBackend>()}, options);
  EXPECT_EQ(result.at(3, 0).status, CellStatus::kDegraded);
}

TEST(FaultTolerance, ReportsSurfaceStatusAndConvergence) {
  RunnerOptions options;
  options.threads = 1;
  const SweepResult result =
      run_sweep(small_spec(), {std::make_shared<SuspectBackend>()}, options);

  const std::string table = runner::render_sweep_table(result);
  EXPECT_NE(table.find("Conv suspect"), std::string::npos);
  EXPECT_NE(table.find("Status suspect"), std::string::npos);
  const std::string csv = runner::sweep_csv(result).to_string();
  EXPECT_NE(csv.find("suspect_converged"), std::string::npos);
  EXPECT_NE(csv.find("suspect_status"), std::string::npos);
  const std::string json = runner::sweep_json(result);
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Checkpoint journal: interrupted run → resume → bit-identical output.

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

TEST(FaultTolerance, JournalRoundTripsEveryCell) {
  const std::string path = temp_path("hmcs_journal_roundtrip.jsonl");
  const auto backend = make_faulty({});  // healthy synthetic backend

  runner::JournalWriter::Shape shape;
  shape.id = "ft";
  shape.points = 8;
  shape.backend_names = {"faulty"};
  runner::JournalWriter writer(path, shape, /*append=*/false);

  RunnerOptions options;
  options.threads = 2;
  options.journal = &writer;
  const SweepResult reference = run_sweep(small_spec(), {backend}, options);

  const runner::SweepJournal journal = runner::load_sweep_journal(path);
  EXPECT_EQ(journal.id, "ft");
  EXPECT_EQ(journal.points, 8u);
  ASSERT_EQ(journal.cells.size(), 8u);
  EXPECT_EQ(journal.completed(), 8u);
  for (std::size_t i = 0; i < journal.cells.size(); ++i) {
    ASSERT_TRUE(journal.cells[i].has_value());
    // Bit-exact doubles and u64 seeds through the JSON-lines encoding.
    EXPECT_DOUBLE_EQ(journal.cells[i]->mean_latency_us,
                     reference.cells[i].mean_latency_us);
    EXPECT_EQ(journal.seeds[i], reference.points[i].seed);
  }
}

TEST(FaultTolerance, JournalRoundTripsNaN) {
  const std::string path = temp_path("hmcs_journal_nan.jsonl");
  FaultInjectionBackend::Options faults;
  faults.nan_on = {4};

  runner::JournalWriter::Shape shape;
  shape.id = "ft";
  shape.points = 8;
  shape.backend_names = {"faulty"};
  runner::JournalWriter writer(path, shape, /*append=*/false);

  RunnerOptions options;
  options.threads = 1;
  options.on_error = FailurePolicy::kCollectAll;
  options.journal = &writer;
  run_sweep(small_spec(), {make_faulty(faults)}, options);

  const runner::SweepJournal journal = runner::load_sweep_journal(path);
  ASSERT_TRUE(journal.cells[4].has_value());
  EXPECT_EQ(journal.cells[4]->status, CellStatus::kDegraded);
  EXPECT_TRUE(std::isnan(journal.cells[4]->mean_latency_us));
}

// The acceptance criterion: kill at ~50%, resume, and the merged
// output is byte-identical to an uninterrupted run at any thread count.
TEST(FaultTolerance, ResumedSweepIsByteIdenticalToUninterrupted) {
  const SweepSpec spec = small_spec();
  RunnerOptions plain;
  plain.threads = 1;
  const SweepResult uninterrupted = run_sweep(spec, {make_faulty({})}, plain);
  const std::string reference_csv =
      runner::sweep_csv(uninterrupted).to_string();

  // Simulate the interrupted first run: journal only the first half of
  // the cells (a real SIGINT run journals whatever finished; which
  // cells those are does not matter for the contract).
  const std::string path = temp_path("hmcs_journal_resume.jsonl");
  runner::JournalWriter::Shape shape;
  shape.id = spec.id;
  shape.points = 8;
  shape.backend_names = {"faulty"};
  {
    runner::JournalWriter writer(path, shape, /*append=*/false);
    for (std::size_t cell = 0; cell < 4; ++cell) {
      writer.record(cell, uninterrupted.points[cell].seed,
                    uninterrupted.cells[cell]);
    }
  }

  for (const std::uint32_t threads : {1u, 8u}) {
    const runner::SweepJournal journal = runner::load_sweep_journal(path);
    EXPECT_EQ(journal.completed(), 4u);

    const auto backend = make_faulty({});
    RunnerOptions options;
    options.threads = threads;
    options.resume = &journal;
    const SweepResult resumed = run_sweep(spec, {backend}, options);

    // Journaled cells were not re-executed...
    EXPECT_EQ(backend->calls().size(), 4u);
    for (const auto& call : backend->calls()) EXPECT_GE(call.point, 4u);
    // ...and the merged artifacts are byte-identical.
    EXPECT_EQ(runner::sweep_csv(resumed).to_string(), reference_csv);
    EXPECT_EQ(runner::sweep_json(resumed), runner::sweep_json(uninterrupted));
  }
}

TEST(FaultTolerance, JournalToleratesTruncatedFinalLine) {
  const std::string path = temp_path("hmcs_journal_truncated.jsonl");
  runner::JournalWriter::Shape shape;
  shape.id = "ft";
  shape.points = 8;
  shape.backend_names = {"faulty"};
  {
    runner::JournalWriter writer(path, shape, /*append=*/false);
    PointResult cell;
    cell.mean_latency_us = 42.0;
    cell.attempts = 1;
    writer.record(0, 123, cell);
  }
  // A SIGKILL mid-write leaves a partial trailing line.
  std::ofstream(path, std::ios::app) << "{\"cell\":1,\"seed\":\"45";

  const runner::SweepJournal journal = runner::load_sweep_journal(path);
  EXPECT_EQ(journal.completed(), 1u);
  ASSERT_TRUE(journal.cells[0].has_value());
  EXPECT_DOUBLE_EQ(journal.cells[0]->mean_latency_us, 42.0);
}

TEST(FaultTolerance, ResumeRejectsMismatchedJournals) {
  const std::string path = temp_path("hmcs_journal_mismatch.jsonl");
  runner::JournalWriter::Shape shape;
  shape.id = "other_sweep";
  shape.points = 8;
  shape.backend_names = {"faulty"};
  {
    runner::JournalWriter writer(path, shape, /*append=*/false);
    PointResult cell;
    writer.record(0, 999, cell);
  }
  const runner::SweepJournal journal = runner::load_sweep_journal(path);
  RunnerOptions options;
  options.threads = 1;
  options.resume = &journal;
  EXPECT_THROW(run_sweep(small_spec(), {make_faulty({})}, options),
               ConfigError);
}

}  // namespace
