// Tests for the serve tier's resilience layer: the sharded cache under
// concurrent mixed load, durable snapshot save/load (including the
// tolerant handling of corrupt, stale, and oversized snapshots),
// deterministic chaos fault injection, and the server's connection
// hardening (idle/read deadlines, connection cap with oldest-idle
// eviction, oversized-request rejection) over real sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hmcs/serve/access_log.hpp"
#include "hmcs/serve/cache.hpp"
#include "hmcs/serve/chaos.hpp"
#include "hmcs/serve/request.hpp"
#include "hmcs/serve/server.hpp"
#include "hmcs/serve/service.hpp"
#include "hmcs/serve/snapshot.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

constexpr const char* kTinyRequest =
    R"({"id":"r1","config":{"clusters":2,"total_nodes":32}})";

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "hmcs_resilience_" + tag + "_" +
         std::to_string(::getpid()) + ".snap";
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

/// Inserts `key` with its real canonical hash, the way the service
/// does — a reloaded snapshot recomputes hashes from the keys, so
/// round-trip tests must hash the same way.
void put_keyed(serve::ShardedResultCache& cache, const std::string& key,
               const std::string& value) {
  cache.put(serve::fnv1a64(key), key, value);
}

std::optional<std::string> get_keyed(serve::ShardedResultCache& cache,
                                     const std::string& key) {
  return cache.get(serve::fnv1a64(key), key);
}

// ---------------------------------------------------------------------------
// ShardedResultCache under concurrency (run under TSan in CI)

TEST(ServeCacheConcurrency, MixedInsertLookupEvictIsRaceFree) {
  // Capacity far below the key universe so eviction churns constantly
  // while other threads look the same keys up.
  serve::ShardedResultCache cache({.shards = 4, .capacity = 64});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeyUniverse = 512;

  std::atomic<std::uint64_t> wrong_value{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (t * 131 + i * 7) % kKeyUniverse;
        const std::string key = "key-" + std::to_string(k);
        if (i % 3 == 0) {
          put_keyed(cache, key, "value-" + std::to_string(k));
        } else {
          const std::optional<std::string> hit = get_keyed(cache, key);
          // A hit must always carry the value written for that key —
          // eviction may make it vanish, but never change it.
          if (hit.has_value() && *hit != "value-" + std::to_string(k)) {
            wrong_value.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong_value.load(), 0u);
  const serve::ShardedResultCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread -
                                       kThreads * ((kOpsPerThread + 2) / 3)));
}

TEST(ServeCacheConcurrency, SnapshotSaveRacesWithWrites) {
  // save_cache_snapshot walks the shards while writers mutate them: the
  // shard locks must make that safe, and every line written must still
  // checksum-verify on reload.
  serve::ShardedResultCache cache({.shards = 4, .capacity = 256});
  const std::string path = temp_path("save_race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      std::string key = "k";
      key += std::to_string(i % 300);
      std::string value = "v";
      value += std::to_string(i);
      put_keyed(cache, key, value);
    }
  });
  serve::SnapshotSaveReport last;
  for (int i = 0; i < 20; ++i) {
    last = serve::save_cache_snapshot(cache, path);
    EXPECT_TRUE(last.ok) << last.error;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  serve::ShardedResultCache reloaded({.shards = 4, .capacity = 256});
  const serve::SnapshotLoadReport report =
      serve::load_cache_snapshot(reloaded, path);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.skipped, 0u) << report.warning;
  EXPECT_EQ(report.loaded, last.entries);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot save/load

TEST(ServeSnapshot, RoundTripRestoresEntriesAndLruOrder) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  for (int i = 0; i < 5; ++i) {
    put_keyed(cache, "k" + std::to_string(i), "v" + std::to_string(i));
  }
  // Touch k0 so it is MRU; k1 becomes the eviction candidate.
  EXPECT_TRUE(get_keyed(cache, "k0").has_value());

  const std::string path = temp_path("roundtrip");
  const serve::SnapshotSaveReport saved = serve::save_cache_snapshot(
      cache, path);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.entries, 5u);
  EXPECT_GT(saved.bytes, 0u);

  serve::ShardedResultCache restored({.shards = 1, .capacity = 5});
  const serve::SnapshotLoadReport report =
      serve::load_cache_snapshot(restored, path);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.loaded, 5u);
  EXPECT_EQ(report.skipped, 0u) << report.warning;

  // The snapshot replays LRU -> MRU, so the restored recency order is
  // the saved one (lookups would perturb it; walk the list instead).
  std::vector<std::string> original_order, restored_order;
  cache.for_each_lru_to_mru(
      [&](const std::string& key, const std::string&) {
        original_order.push_back(key);
      });
  restored.for_each_lru_to_mru(
      [&](const std::string& key, const std::string& value) {
        restored_order.push_back(key);
        EXPECT_EQ(value, "v" + key.substr(1));  // values intact
      });
  EXPECT_EQ(restored_order, original_order);

  // ...so the restored cache evicts what the original would have
  // evicted: k1 (the LRU after k0 was touched), not k0.
  put_keyed(restored, "fresh", "F");
  EXPECT_FALSE(get_keyed(restored, "k1").has_value());
  EXPECT_EQ(get_keyed(restored, "k0"), std::optional<std::string>("v0"));
  std::remove(path.c_str());
}

TEST(ServeSnapshot, MissingFileIsACleanColdStart) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 4});
  const serve::SnapshotLoadReport report = serve::load_cache_snapshot(
      cache, temp_path("does_not_exist"));
  EXPECT_FALSE(report.found);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeSnapshot, CorruptLinesAreSkippedAndCounted) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  for (int i = 0; i < 4; ++i) {
    put_keyed(cache, "k" + std::to_string(i), "v" + std::to_string(i));
  }
  const std::string path = temp_path("corrupt");
  ASSERT_TRUE(serve::save_cache_snapshot(cache, path).ok);

  // Damage the file the three ways a crash or disk fault would:
  // garbage bytes, a truncated entry, and a bit-flipped value (which
  // only the checksum can catch).
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);  // header + 4 entries
  lines[1] = "}{ not json at all";
  lines[2] = lines[2].substr(0, lines[2].size() / 2);
  const std::size_t v = lines[3].find("\"value\":\"v");
  ASSERT_NE(v, std::string::npos);
  lines[3][v + 10] = 'X';  // flips the value byte; check no longer matches
  write_lines(path, lines);

  serve::ShardedResultCache restored({.shards = 1, .capacity = 8});
  const serve::SnapshotLoadReport report =
      serve::load_cache_snapshot(restored, path);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.loaded, 1u);   // only the untouched entry survives
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_FALSE(report.warning.empty());
  EXPECT_EQ(restored.stats().entries, 1u);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, UnknownVersionDegradesToColdStart) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  put_keyed(cache, "k", "v");
  const std::string path = temp_path("version");
  ASSERT_TRUE(serve::save_cache_snapshot(cache, path).ok);
  std::vector<std::string> lines = read_lines(path);
  lines[0] = R"({"hmcs_cache_snapshot":99,"ts_ms":0})";
  write_lines(path, lines);

  serve::ShardedResultCache restored({.shards = 1, .capacity = 8});
  const serve::SnapshotLoadReport report =
      serve::load_cache_snapshot(restored, path);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.skipped, 2u);  // header + the entry behind it
  EXPECT_NE(report.warning.find("version"), std::string::npos)
      << report.warning;
  std::remove(path.c_str());
}

TEST(ServeSnapshot, OversizedLinesAreSkipped) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  put_keyed(cache, "small", "s");
  put_keyed(cache, "huge", std::string(4096, 'x'));
  const std::string path = temp_path("oversized");
  ASSERT_TRUE(serve::save_cache_snapshot(cache, path).ok);

  serve::ShardedResultCache restored({.shards = 1, .capacity = 8});
  const serve::SnapshotLoadReport report = serve::load_cache_snapshot(
      restored, path, {.max_line_bytes = 512});
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_TRUE(get_keyed(restored, "small").has_value());
  EXPECT_FALSE(get_keyed(restored, "huge").has_value());
  std::remove(path.c_str());
}

TEST(ServeSnapshot, SaveIsAtomicOverThePreviousSnapshot) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  put_keyed(cache, "a", "1");
  const std::string path = temp_path("atomic");
  ASSERT_TRUE(serve::save_cache_snapshot(cache, path).ok);

  // An injected write failure must leave the previous snapshot intact
  // and remove the temp file — exactly the crash-mid-save contract.
  serve::FaultPlan plan;
  plan.snapshot_fail_prob = 1.0;
  serve::ChaosInjector chaos(plan);
  const serve::SnapshotSaveReport failed =
      serve::save_cache_snapshot(cache, path, &chaos);
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("chaos"), std::string::npos) << failed.error;
  EXPECT_EQ(chaos.counters().snapshot_failures, 1u);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  serve::ShardedResultCache restored({.shards = 1, .capacity = 8});
  const serve::SnapshotLoadReport report =
      serve::load_cache_snapshot(restored, path);
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(report.skipped, 0u) << report.warning;
  std::remove(path.c_str());
}

TEST(ServeSnapshot, PeriodicWriterSpillsOnItsOwn) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 8});
  put_keyed(cache, "k", "v");
  const std::string path = temp_path("periodic");
  {
    serve::SnapshotWriter::Options options;
    options.path = path;
    options.interval_ms = 5;
    serve::SnapshotWriter writer(cache, options);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (writer.saves() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(writer.saves(), 0u);
  }  // dtor stops the thread
  serve::ShardedResultCache restored({.shards = 1, .capacity = 8});
  EXPECT_EQ(serve::load_cache_snapshot(restored, path).loaded, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Chaos injection

TEST(ServeChaos, SameSeedReplaysTheSameDecisions) {
  serve::FaultPlan plan;
  plan.seed = 42;
  plan.shed_prob = 0.5;
  serve::ChaosInjector a(plan), b(plan);
  std::vector<bool> fired_a, fired_b;
  for (int i = 0; i < 200; ++i) {
    fired_a.push_back(a.should_force_shed());
    fired_b.push_back(b.should_force_shed());
  }
  EXPECT_EQ(fired_a, fired_b);
  // A fair coin over 200 draws lands strictly inside (0, 200).
  const auto fired = static_cast<std::size_t>(
      std::count(fired_a.begin(), fired_a.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, fired_a.size());
  EXPECT_EQ(a.counters().forced_sheds, fired);

  plan.seed = 43;
  serve::ChaosInjector c(plan);
  std::vector<bool> fired_c;
  for (int i = 0; i < 200; ++i) fired_c.push_back(c.should_force_shed());
  EXPECT_NE(fired_a, fired_c);  // different seed, different stream
}

TEST(ServeChaos, ZeroPlanInjectsNothing) {
  serve::ChaosInjector chaos;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(chaos.should_force_shed());
    EXPECT_EQ(chaos.eval_delay_ms(), 0.0);
    EXPECT_FALSE(chaos.should_fail_eval());
    EXPECT_FALSE(chaos.should_fail_snapshot());
  }
  const serve::ChaosInjector::Counters counters = chaos.counters();
  EXPECT_EQ(counters.forced_sheds, 0u);
  EXPECT_EQ(counters.eval_delays, 0u);
  EXPECT_EQ(counters.eval_errors, 0u);
  EXPECT_EQ(counters.snapshot_failures, 0u);
}

TEST(ServeChaos, ForcedShedTakesTheNormalShedPath) {
  serve::FaultPlan plan;
  plan.shed_prob = 1.0;
  serve::ServeService::Options options;
  options.chaos = std::make_shared<serve::ChaosInjector>(plan);
  serve::ServeService service(options);

  const std::string reply = service.handle_line(kTinyRequest);
  EXPECT_NE(reply.find("\"status\":\"shed\""), std::string::npos) << reply;
  EXPECT_EQ(service.counters().shed, 1u);
  EXPECT_EQ(service.counters().ok, 0u);
  EXPECT_EQ(options.chaos->counters().forced_sheds, 1u);
  // The shed request must not have polluted the cache.
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

TEST(ServeChaos, InjectedEvalErrorSurfacesAsTaggedErrorReply) {
  serve::FaultPlan plan;
  plan.eval_error_prob = 1.0;
  serve::ServeService::Options options;
  options.chaos = std::make_shared<serve::ChaosInjector>(plan);
  serve::ServeService service(options);

  const std::string reply = service.handle_line(kTinyRequest);
  EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("chaos"), std::string::npos) << reply;
  EXPECT_EQ(service.counters().errors, 1u);
  EXPECT_EQ(options.chaos->counters().eval_errors, 1u);
}

TEST(ServeChaos, ShedsAndErrorsLandInTheAccessLog) {
  const std::string path = temp_path("chaos_log");
  {
    serve::FaultPlan plan;
    plan.shed_prob = 1.0;
    serve::ServeService::Options options;
    options.chaos = std::make_shared<serve::ChaosInjector>(plan);
    serve::AccessLog::Options log_options;
    log_options.path = path;
    options.access_log = std::make_shared<serve::AccessLog>(log_options);
    serve::ServeService service(options);

    service.handle_line(kTinyRequest);            // forced shed
    plan.shed_prob = 0.0;
    plan.eval_error_prob = 1.0;
    options.chaos->set_plan(plan);
    service.handle_line(kTinyRequest);            // injected error
    options.access_log->flush();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse_json(lines[0]).at("outcome").as_string(), "shed");
  EXPECT_EQ(parse_json(lines[1]).at("outcome").as_string(), "error");
  std::remove(path.c_str());
}

TEST(ServeChaos, ChaosOpInstallsAndReportsThePlan) {
  serve::ServeService service({});
  const std::string installed = service.handle_line(
      R"({"op":"chaos","plan":{"seed":7,"shed_prob":1}})");
  EXPECT_NE(installed.find("\"status\":\"ok\""), std::string::npos)
      << installed;
  EXPECT_NE(installed.find("\"shed_prob\":1"), std::string::npos)
      << installed;

  const std::string shed = service.handle_line(kTinyRequest);
  EXPECT_NE(shed.find("\"status\":\"shed\""), std::string::npos) << shed;

  const JsonValue report = parse_json(service.handle_line(
      R"({"op":"chaos"})"));
  EXPECT_EQ(report.at("counters").at("forced_sheds").as_number(), 1.0);

  // An all-zero plan turns injection back off.
  service.handle_line(R"({"op":"chaos","plan":{}})");
  EXPECT_NE(service.handle_line(kTinyRequest).find("\"status\":\"ok\""),
            std::string::npos);
}

TEST(ServeChaos, ChaosOpRejectsBadPlans) {
  serve::ServeService service({});
  const std::string unknown = service.handle_line(
      R"({"op":"chaos","plan":{"not_a_knob":1}})");
  EXPECT_NE(unknown.find("\"status\":\"error\""), std::string::npos)
      << unknown;
  const std::string out_of_range = service.handle_line(
      R"({"op":"chaos","plan":{"shed_prob":1.5}})");
  EXPECT_NE(out_of_range.find("\"status\":\"error\""), std::string::npos)
      << out_of_range;
}

// ---------------------------------------------------------------------------
// Connection hardening over real sockets

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0)
        << std::strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// Reads reply lines until EOF (the server closing the socket).
  std::vector<std::string> read_until_eof() {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t received = ::recv(fd_, chunk, sizeof chunk, 0);
      if (received < 0 && errno == EINTR) continue;
      if (received <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(received));
      for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline == std::string::npos) break;
        lines.push_back(buffer.substr(0, newline));
        buffer.erase(0, newline + 1);
      }
    }
    return lines;
  }

 private:
  int fd_ = -1;
};

TEST(ServeServerHardening, IdleTimeoutEvictsSilentClient) {
  serve::ServeServer::Options options;
  options.threads = 1;
  options.idle_timeout_ms = 120;
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  TestClient client(port);  // connects, then says nothing
  const std::vector<std::string> replies = client.read_until_eof();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("\"status\":\"error\""), std::string::npos)
      << replies[0];
  EXPECT_NE(replies[0].find("idle timeout"), std::string::npos)
      << replies[0];
  EXPECT_EQ(server.stats().timeout_evicted, 1u);

  server.shutdown();
  accept_thread.join();
}

TEST(ServeServerHardening, ReadTimeoutEvictsStalledPartialRequest) {
  serve::ServeServer::Options options;
  options.threads = 1;
  options.read_timeout_ms = 120;  // idle stays unlimited: only a
                                  // half-sent line is policed
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  TestClient client(port);
  client.send_raw(R"({"config":{"clu)");  // ...and never finishes
  const std::vector<std::string> replies = client.read_until_eof();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("read timeout"), std::string::npos)
      << replies[0];
  EXPECT_EQ(server.stats().timeout_evicted, 1u);

  server.shutdown();
  accept_thread.join();
}

TEST(ServeServerHardening, OversizedRequestGetsStructuredError) {
  serve::ServeServer::Options options;
  options.threads = 1;
  options.max_line_bytes = 256;
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  TestClient client(port);
  client.send_raw(std::string(1024, 'x'));  // no newline: can't complete
  const std::vector<std::string> replies = client.read_until_eof();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("\"status\":\"error\""), std::string::npos)
      << replies[0];
  EXPECT_NE(replies[0].find("exceeds 256 bytes"), std::string::npos)
      << replies[0];
  EXPECT_EQ(server.stats().oversized, 1u);

  server.shutdown();
  accept_thread.join();
}

TEST(ServeServerHardening, ConnectionLimitEvictsOldestIdle) {
  serve::ServeServer::Options options;
  options.threads = 1;
  options.max_connections = 2;
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  TestClient first(port);
  while (server.stats().connections < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TestClient second(port);
  while (server.stats().connections < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TestClient third(port);  // over the cap: `first` has been idle longest

  const std::vector<std::string> evicted = first.read_until_eof();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_NE(evicted[0].find("evicted"), std::string::npos) << evicted[0];
  EXPECT_EQ(server.stats().limit_evicted, 1u);

  // The survivors still serve requests.
  second.send_line(kTinyRequest);
  third.send_line(kTinyRequest);
  while (server.service().counters().requests < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();
  accept_thread.join();
  for (TestClient* client : {&second, &third}) {
    const std::vector<std::string> replies = client->read_until_eof();
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_NE(replies[0].find("\"status\":\"ok\""), std::string::npos)
        << replies[0];
  }
}

}  // namespace
