// Synthetic job workload generator and the placement arithmetic.

#include <gtest/gtest.h>

#include "hmcs/jobs/job_workload.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs::jobs;

WorkloadSpec base_spec() {
  WorkloadSpec spec;
  spec.mean_interarrival_us = 10e3;
  spec.min_tasks = 2;
  spec.max_tasks = 32;
  spec.mean_work_us = 100e3;
  spec.messages_per_task = 100.0;
  spec.seed = 7;
  return spec;
}

TEST(JobWorkload, GeneratesRequestedCountInArrivalOrder) {
  const auto jobs = generate_jobs(base_spec(), 500);
  ASSERT_EQ(jobs.size(), 500u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) {
      EXPECT_GE(jobs[i].arrival_us, jobs[i - 1].arrival_us);
    }
  }
}

TEST(JobWorkload, TaskCountsArePowersOfTwoInRange) {
  const auto jobs = generate_jobs(base_spec(), 2000);
  bool saw_min = false;
  bool saw_max = false;
  for (const Job& job : jobs) {
    EXPECT_TRUE(hmcs::is_power_of_two(job.tasks));
    EXPECT_GE(job.tasks, 2u);
    EXPECT_LE(job.tasks, 32u);
    saw_min |= job.tasks == 2;
    saw_max |= job.tasks == 32;
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(JobWorkload, ArrivalsMatchConfiguredRate) {
  const auto jobs = generate_jobs(base_spec(), 5000);
  const double horizon = jobs.back().arrival_us;
  EXPECT_NEAR(horizon / 5000.0, 10e3, 0.05 * 10e3);
}

TEST(JobWorkload, WorkIsExponentialWithConfiguredMean) {
  const auto jobs = generate_jobs(base_spec(), 5000);
  double sum = 0.0;
  for (const Job& job : jobs) sum += job.work_us;
  EXPECT_NEAR(sum / 5000.0, 100e3, 0.05 * 100e3);
}

TEST(JobWorkload, Deterministic) {
  const auto a = generate_jobs(base_spec(), 100);
  const auto b = generate_jobs(base_spec(), 100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].tasks, b[i].tasks);
  }
}

TEST(JobWorkload, Validation) {
  WorkloadSpec bad = base_spec();
  bad.min_tasks = 3;
  EXPECT_THROW(generate_jobs(bad, 1), hmcs::ConfigError);
  bad = base_spec();
  bad.max_tasks = 1;  // below min
  EXPECT_THROW(generate_jobs(bad, 1), hmcs::ConfigError);
  bad = base_spec();
  bad.mean_work_us = 0.0;
  EXPECT_THROW(generate_jobs(bad, 1), hmcs::ConfigError);
}

TEST(Placement, RemotePairFraction) {
  Placement all_local;
  all_local.tasks_per_cluster = {8, 0, 0};
  EXPECT_DOUBLE_EQ(all_local.remote_pair_fraction(), 0.0);
  EXPECT_EQ(all_local.clusters_used(), 1u);

  Placement split;
  split.tasks_per_cluster = {4, 4};
  // Same-cluster ordered pairs: 2*4*3 = 24 of 8*7 = 56.
  EXPECT_NEAR(split.remote_pair_fraction(), 1.0 - 24.0 / 56.0, 1e-12);
  EXPECT_EQ(split.clusters_used(), 2u);

  Placement singleton;
  singleton.tasks_per_cluster = {1};
  EXPECT_DOUBLE_EQ(singleton.remote_pair_fraction(), 0.0);

  Placement fully_spread;
  fully_spread.tasks_per_cluster = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(fully_spread.remote_pair_fraction(), 1.0);
}

TEST(JobOutcome, MetricsArithmetic) {
  JobOutcome outcome;
  outcome.job.arrival_us = 100.0;
  outcome.start_us = 300.0;
  outcome.runtime_us = 400.0;
  outcome.finish_us = 700.0;
  EXPECT_DOUBLE_EQ(outcome.wait_us(), 200.0);
  EXPECT_DOUBLE_EQ(outcome.response_us(), 600.0);
  EXPECT_DOUBLE_EQ(outcome.bounded_slowdown(), 600.0 / 1000.0);  // floor
  outcome.runtime_us = 2000.0;
  outcome.finish_us = 2300.0;
  EXPECT_DOUBLE_EQ(outcome.bounded_slowdown(), 2200.0 / 2000.0);
}

}  // namespace
