// Switch-level fabric simulator: no-load timing laws, emergent bisection
// bottleneck on the chain, pattern-insensitivity of the fat-tree, and
// agreement with the Section 5 closed forms in the regime they assume.

#include <gtest/gtest.h>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/netsim/switch_fabric_sim.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs;
using netsim::FabricSimOptions;
using netsim::FabricSimResult;
using netsim::SwitchFabricSim;
using netsim::SwitchingMode;

FabricSimOptions light_options() {
  FabricSimOptions options;
  options.technology = analytic::fast_ethernet();
  options.rate_per_us = 1e-6;  // essentially no contention
  options.measured_messages = 3000;
  options.warmup_messages = 200;
  options.seed = 5;
  return options;
}

TEST(SwitchFabricSim, NoLoadCutThroughMatchesEq11PerPath) {
  // Cut-through at no load: latency = alpha + hops*alpha_sw + M*beta,
  // with hops the *actual* per-pair traversals; eq. (11) uses the worst
  // case 2d-1 for every message, so it upper-bounds the mean.
  const topology::FatTree tree(32, 8);
  FabricSimOptions options = light_options();
  options.mode = SwitchingMode::kCutThrough;
  SwitchFabricSim sim(tree.build_graph(), options);
  const FabricSimResult result = sim.run();

  const double expected =
      options.technology.latency_us +
      tree.average_traversals() * options.switch_latency_us +
      options.message_bytes * options.technology.byte_time_us();
  EXPECT_NEAR(result.mean_latency_us, expected, 0.01 * expected);
  EXPECT_NEAR(result.mean_switch_hops, tree.average_traversals(), 0.05);

  const analytic::ServiceTimeBreakdown eq11 = analytic::network_service_time(
      options.technology, 32, {8, options.switch_latency_us},
      analytic::NetworkArchitecture::kNonBlocking, options.message_bytes);
  EXPECT_LE(result.mean_latency_us, eq11.total_us() * 1.001);
}

TEST(SwitchFabricSim, NoLoadStoreAndForwardSerialisesPerHop) {
  const topology::FatTree tree(32, 8);
  FabricSimOptions options = light_options();
  options.mode = SwitchingMode::kStoreAndForward;
  SwitchFabricSim sim(tree.build_graph(), options);
  const FabricSimResult result = sim.run();

  const double per_hop = options.switch_latency_us +
                         options.message_bytes *
                             options.technology.byte_time_us();
  const double expected =
      options.technology.latency_us + tree.average_traversals() * per_hop;
  EXPECT_NEAR(result.mean_latency_us, expected, 0.01 * expected);

  // S&F must beat cut-through by roughly (avg_hops-1) serialisations.
  FabricSimOptions ct = options;
  ct.mode = SwitchingMode::kCutThrough;
  SwitchFabricSim ct_sim(tree.build_graph(), ct);
  EXPECT_GT(result.mean_latency_us, ct_sim.run().mean_latency_us);
}

TEST(SwitchFabricSim, ChainBottleneckEmergesAtTheMiddleSwitch) {
  // Uniform traffic on a chain: the centre switch carries roughly half
  // of all traffic — the bisection bottleneck of Section 5.3, measured
  // rather than assumed.
  const topology::LinearArray chain(96, 24);  // 4 switches
  FabricSimOptions options = light_options();
  options.rate_per_us = 2e-5;
  options.measured_messages = 8000;
  SwitchFabricSim sim(chain.build_graph(), options);
  const FabricSimResult result = sim.run();
  ASSERT_EQ(result.switch_utilization.size(), 4u);
  // The two inner switches dominate the two outer ones.
  const double outer = std::max(result.switch_utilization[0],
                                result.switch_utilization[3]);
  const double inner = std::min(result.switch_utilization[1],
                                result.switch_utilization[2]);
  EXPECT_GT(inner, outer);
  EXPECT_TRUE(result.busiest_switch == 1 || result.busiest_switch == 2);
}

TEST(SwitchFabricSim, ChainWinsOnHopsAtLowLoad) {
  // With no contention the chain's shorter average path (k/3+1 switches
  // vs the 3-stage tree's ~4.4) actually makes it *faster* — blocking is
  // a throughput phenomenon, not a latency-at-idle one.
  const std::uint64_t n = 48;
  FabricSimOptions options = light_options();
  SwitchFabricSim tree_sim(topology::FatTree(n, 8).build_graph(), options);
  SwitchFabricSim chain_sim(topology::LinearArray(n, 8).build_graph(),
                            options);
  const FabricSimResult tree_result = tree_sim.run();
  const FabricSimResult chain_result = chain_sim.run();
  EXPECT_LT(chain_result.mean_switch_hops, tree_result.mean_switch_hops);
  EXPECT_LT(chain_result.mean_latency_us, tree_result.mean_latency_us);
}

TEST(SwitchFabricSim, FatTreeSustainsHigherThroughputThanChain) {
  // Same endpoints, same technology, offered load well above the chain's
  // bisection capacity (~3.9e-4/endpoint for 48 nodes on 8-port
  // switches): the fat-tree keeps delivering, the chain saturates at its
  // middle switch — Section 5.3's blocking penalty, emergent.
  const std::uint64_t n = 48;
  FabricSimOptions options = light_options();
  options.rate_per_us = 1e-3;
  options.measured_messages = 6000;
  options.warmup_messages = 2000;

  SwitchFabricSim tree_sim(topology::FatTree(n, 8).build_graph(), options);
  SwitchFabricSim chain_sim(topology::LinearArray(n, 8).build_graph(),
                            options);
  const FabricSimResult tree_result = tree_sim.run();
  const FabricSimResult chain_result = chain_sim.run();

  EXPECT_GT(tree_result.delivered_rate_per_us,
            1.5 * chain_result.delivered_rate_per_us);
  EXPECT_LT(tree_result.mean_latency_us, chain_result.mean_latency_us);
  // The chain's bottleneck switch is pinned near 100% busy.
  EXPECT_GT(chain_result.max_switch_utilization, 0.95);
}

TEST(SwitchFabricSim, EcmpUnlocksFatTreeBandwidth) {
  // Deterministic lowest-id routing funnels each switch's flows through
  // one up-link; random minimal (ECMP) routing spreads them. Theorem 1
  // is only realised with the latter.
  const topology::FatTree tree(48, 8);
  FabricSimOptions options = light_options();
  options.rate_per_us = 1e-3;
  options.measured_messages = 6000;
  options.warmup_messages = 2000;

  FabricSimOptions deterministic = options;
  deterministic.routing = netsim::RoutingPolicy::kDeterministic;
  SwitchFabricSim ecmp_sim(tree.build_graph(), options);
  SwitchFabricSim det_sim(tree.build_graph(), deterministic);
  const FabricSimResult ecmp = ecmp_sim.run();
  const FabricSimResult det = det_sim.run();
  EXPECT_GT(ecmp.delivered_rate_per_us, 1.3 * det.delivered_rate_per_us);
  EXPECT_LT(ecmp.mean_latency_us, det.mean_latency_us);
}

TEST(SwitchFabricSim, ClosedLoopThrottlesOpenLoopQueues) {
  const topology::LinearArray chain(48, 24);
  FabricSimOptions closed = light_options();
  closed.rate_per_us = 1e-4;  // far beyond chain capacity
  closed.closed_loop = true;
  closed.measured_messages = 4000;
  FabricSimOptions open = closed;
  open.closed_loop = false;
  SwitchFabricSim closed_sim(chain.build_graph(), closed);
  SwitchFabricSim open_sim(chain.build_graph(), open);
  const double closed_latency = closed_sim.run().mean_latency_us;
  const double open_latency = open_sim.run().mean_latency_us;
  // Open-loop queues grow without bound, so its measured latency blows
  // past the closed loop's (which is capped by one message per source).
  EXPECT_GT(open_latency, closed_latency);
}

TEST(SwitchFabricSim, FasterUplinksRelieveUpperStages) {
  // The paper's future-work "technology heterogeneity": a fat-tree with
  // 4x upper-stage bandwidth serves saturating traffic with lower
  // latency and higher delivered throughput than a uniform one.
  const topology::FatTree tree(48, 8);
  FabricSimOptions uniform = light_options();
  uniform.rate_per_us = 1e-3;
  uniform.measured_messages = 6000;
  uniform.warmup_messages = 2000;
  FabricSimOptions fast_up = uniform;
  fast_up.stage_bandwidth_scale = {1.0, 4.0, 4.0};

  SwitchFabricSim uniform_sim(tree.build_graph(), uniform);
  SwitchFabricSim fast_sim(tree.build_graph(), fast_up);
  const FabricSimResult base = uniform_sim.run();
  const FabricSimResult upgraded = fast_sim.run();
  EXPECT_GT(upgraded.delivered_rate_per_us, base.delivered_rate_per_us);
  EXPECT_LT(upgraded.mean_latency_us, base.mean_latency_us);
}

TEST(SwitchFabricSim, StageScaleValidation) {
  const topology::FatTree tree(16, 8);
  FabricSimOptions bad = light_options();
  bad.stage_bandwidth_scale = {1.0, 0.0};
  EXPECT_THROW(SwitchFabricSim(tree.build_graph(), bad), hmcs::ConfigError);
}

TEST(SwitchFabricSim, Reproducible) {
  const topology::FatTree tree(16, 8);
  SwitchFabricSim a(tree.build_graph(), light_options());
  SwitchFabricSim b(tree.build_graph(), light_options());
  EXPECT_DOUBLE_EQ(a.run().mean_latency_us, b.run().mean_latency_us);
}

TEST(SwitchFabricSim, ReportsPercentilesAndCi) {
  const topology::FatTree tree(32, 8);
  FabricSimOptions options = light_options();
  options.rate_per_us = 3e-5;
  SwitchFabricSim sim(tree.build_graph(), options);
  const FabricSimResult result = sim.run();
  EXPECT_GE(result.p95_latency_us, result.mean_latency_us);
  EXPECT_GT(result.latency_ci.half_width, 0.0);
  EXPECT_LE(result.latency_ci.lower, result.mean_latency_us);
  EXPECT_GE(result.latency_ci.upper, result.mean_latency_us);
}

TEST(SwitchFabricSim, Validation) {
  const topology::FatTree tree(16, 8);
  FabricSimOptions bad = light_options();
  bad.rate_per_us = 0.0;
  EXPECT_THROW(SwitchFabricSim(tree.build_graph(), bad), hmcs::ConfigError);
  bad = light_options();
  bad.message_bytes = -5.0;
  EXPECT_THROW(SwitchFabricSim(tree.build_graph(), bad), hmcs::ConfigError);

  SwitchFabricSim once(tree.build_graph(), light_options());
  once.run();
  EXPECT_THROW(once.run(), hmcs::ConfigError);
}

}  // namespace
