// Independent-replications framework.

#include <gtest/gtest.h>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/runner/replication.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using runner::ReplicationResult;
using runner::run_replications;

analytic::SystemConfig small_config() {
  return analytic::paper_scenario(analytic::HeterogeneityCase::kCase1, 4,
                                  analytic::NetworkArchitecture::kNonBlocking,
                                  1024.0, 32, 1e-4);
}

sim::SimOptions fast_options() {
  sim::SimOptions options;
  options.measured_messages = 2000;
  options.warmup_messages = 200;
  options.seed = 11;
  return options;
}

TEST(Replication, RunsRequestedCount) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 4);
  ASSERT_EQ(result.replications.size(), 4u);
  for (const auto& run : result.replications) {
    EXPECT_EQ(run.messages_measured, 2000u);
  }
}

TEST(Replication, ReplicationsAreDecorrelated) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 3);
  EXPECT_NE(result.replications[0].mean_latency_us,
            result.replications[1].mean_latency_us);
  EXPECT_NE(result.replications[1].mean_latency_us,
            result.replications[2].mean_latency_us);
}

TEST(Replication, GrandMeanIsMeanOfMeans) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 3);
  double sum = 0.0;
  for (const auto& run : result.replications) sum += run.mean_latency_us;
  EXPECT_NEAR(result.mean_latency_us, sum / 3.0, 1e-9);
}

TEST(Replication, ReproducibleFromBaseSeed) {
  const ReplicationResult a =
      run_replications(small_config(), fast_options(), 3);
  const ReplicationResult b =
      run_replications(small_config(), fast_options(), 3);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_DOUBLE_EQ(a.latency_ci.half_width, b.latency_ci.half_width);
}

TEST(Replication, IntervalCoversReplicationSpread) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 5);
  EXPECT_GT(result.latency_ci.half_width, 0.0);
  EXPECT_LE(result.latency_ci.lower, result.mean_latency_us);
  EXPECT_GE(result.latency_ci.upper, result.mean_latency_us);
}

TEST(Replication, SingleReplicationFallsBackToWithinRunCi) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 1);
  EXPECT_DOUBLE_EQ(result.latency_ci.half_width,
                   result.replications[0].latency_ci.half_width);
}

TEST(Replication, ParallelExecutionBitIdenticalToSerial) {
  // Seeds are pre-derived and every simulator instance is
  // thread-confined, so any worker count gives the same numbers.
  const ReplicationResult serial =
      run_replications(small_config(), fast_options(), 4, 1);
  const ReplicationResult parallel =
      run_replications(small_config(), fast_options(), 4, 4);
  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (std::size_t r = 0; r < serial.replications.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial.replications[r].mean_latency_us,
                     parallel.replications[r].mean_latency_us);
    EXPECT_EQ(serial.replications[r].events_executed,
              parallel.replications[r].events_executed);
  }
  EXPECT_DOUBLE_EQ(serial.mean_latency_us, parallel.mean_latency_us);
}

TEST(Replication, RejectsZeroReplications) {
  EXPECT_THROW(run_replications(small_config(), fast_options(), 0),
               ConfigError);
}

TEST(Replication, PercentilesOrdered) {
  const ReplicationResult result =
      run_replications(small_config(), fast_options(), 1);
  const auto& run = result.replications[0];
  EXPECT_LE(run.min_latency_us, run.p50_latency_us);
  EXPECT_LE(run.p50_latency_us, run.p95_latency_us);
  EXPECT_LE(run.p95_latency_us, run.p99_latency_us);
  EXPECT_LE(run.p99_latency_us, run.max_latency_us);
  // Mean above median for right-skewed latency distributions.
  EXPECT_GT(run.mean_latency_us, 0.0);
}

}  // namespace
