#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hmcs/util/csv.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/table.hpp"

namespace {

using namespace hmcs;

TEST(Table, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), ConfigError);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ConfigError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"C", "Latency"});
  t.add_row({"1", "27.1"});
  t.add_row({"256", "41.3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("|   C | Latency |"), std::string::npos);
  EXPECT_NE(out.find("|   1 |    27.1 |"), std::string::npos);
  EXPECT_NE(out.find("| 256 |    41.3 |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-----"), std::string::npos);
}

TEST(Table, NumericRowFormatsWithPrecision) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
  EXPECT_NE(t.render().find("2.00"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Csv, SerialisesHeaderAndRows) {
  CsvWriter csv({"clusters", "latency_ms"});
  csv.add_numeric_row({4.0, 1.25});
  EXPECT_EQ(csv.to_string(), "clusters,latency_ms\n4,1.25\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"a,b", "say \"hi\"\nbye"});
  EXPECT_EQ(csv.to_string(), "name,note\n\"a,b\",\"say \"\"hi\"\"\nbye\"\n");
}

TEST(Csv, RejectsMismatchedRow) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), ConfigError);
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "hmcs_csv_test.csv";
  CsvWriter csv({"x"});
  csv.add_numeric_row({42.0});
  csv.write_file(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n42\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsLoudly) {
  CsvWriter csv({"x"});
  EXPECT_THROW(csv.write_file("/nonexistent-dir/file.csv"), ConfigError);
}

}  // namespace
