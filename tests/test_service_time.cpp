// Per-network service times: eq. (11) for the fat-tree and eqs. (19)-(21)
// for the blocking linear array, with hand-computed reference values.

#include <gtest/gtest.h>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

const SwitchParams kPaperSwitch{24, 10.0};

TEST(ServiceTime, NonBlockingEq11FastEthernet) {
  // 256 endpoints on 24-port switches: d=2, so (2d-1)*10 = 30 us.
  const ServiceTimeBreakdown t =
      network_service_time(fast_ethernet(), 256, kPaperSwitch,
                           NetworkArchitecture::kNonBlocking, 1024.0);
  EXPECT_DOUBLE_EQ(t.link_latency_us, 50.0);
  EXPECT_DOUBLE_EQ(t.switch_latency_us, 30.0);
  EXPECT_NEAR(t.transmission_us, 1024.0 / 10.5, 1e-9);
  EXPECT_DOUBLE_EQ(t.blocking_us, 0.0);
  EXPECT_NEAR(t.total_us(), 50.0 + 30.0 + 1024.0 / 10.5, 1e-9);
  EXPECT_NEAR(t.service_rate(), 1.0 / t.total_us(), 1e-15);
}

TEST(ServiceTime, NonBlockingSingleSwitchCollapse) {
  // 16 endpoints on 24 ports: d=1, a single switch traversal.
  const ServiceTimeBreakdown t =
      network_service_time(gigabit_ethernet(), 16, kPaperSwitch,
                           NetworkArchitecture::kNonBlocking, 1024.0);
  EXPECT_DOUBLE_EQ(t.switch_latency_us, 10.0);
}

TEST(ServiceTime, BlockingEq21FastEthernet) {
  // 256 endpoints: k = ceil(256/24) = 11 switches; switch term
  // (k+1)/3 * 10 = 40 us; blocking term (N/2-1)*M*beta.
  const ServiceTimeBreakdown t =
      network_service_time(fast_ethernet(), 256, kPaperSwitch,
                           NetworkArchitecture::kBlocking, 1024.0);
  EXPECT_DOUBLE_EQ(t.link_latency_us, 50.0);
  EXPECT_DOUBLE_EQ(t.switch_latency_us, 40.0);
  const double m_beta = 1024.0 / 10.5;
  EXPECT_NEAR(t.transmission_us, m_beta, 1e-9);
  EXPECT_NEAR(t.blocking_us, 127.0 * m_beta, 1e-6);             // eq. (20)
  EXPECT_NEAR(t.transmission_us + t.blocking_us, 128.0 * m_beta, 1e-6);  // eq. (21)
}

TEST(ServiceTime, BlockingTwoEndpointsHaveNoBlockingTerm) {
  // N=2: (N/2 - 1) = 0 contenders.
  const ServiceTimeBreakdown t =
      network_service_time(fast_ethernet(), 2, kPaperSwitch,
                           NetworkArchitecture::kBlocking, 1024.0);
  EXPECT_DOUBLE_EQ(t.blocking_us, 0.0);
}

TEST(ServiceTime, SingleEndpointIsPureLink) {
  for (const auto arch : {NetworkArchitecture::kNonBlocking,
                          NetworkArchitecture::kBlocking}) {
    const ServiceTimeBreakdown t = network_service_time(
        gigabit_ethernet(), 1, kPaperSwitch, arch, 512.0);
    EXPECT_DOUBLE_EQ(t.switch_latency_us, 0.0);
    EXPECT_DOUBLE_EQ(t.blocking_us, 0.0);
    EXPECT_NEAR(t.total_us(), 80.0 + 512.0 / 94.0, 1e-9);
  }
}

TEST(ServiceTime, BlockingAlwaysSlowerThanNonBlocking) {
  for (const std::uint64_t endpoints : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const double blocking =
        network_service_time(fast_ethernet(), endpoints, kPaperSwitch,
                             NetworkArchitecture::kBlocking, 1024.0)
            .total_us();
    const double nonblocking =
        network_service_time(fast_ethernet(), endpoints, kPaperSwitch,
                             NetworkArchitecture::kNonBlocking, 1024.0)
            .total_us();
    EXPECT_GT(blocking, nonblocking) << "endpoints=" << endpoints;
  }
}

TEST(ServiceTime, MonotoneInMessageSize) {
  double previous = 0.0;
  for (const double bytes : {64.0, 256.0, 1024.0, 4096.0}) {
    const double t =
        network_service_time(fast_ethernet(), 64, kPaperSwitch,
                             NetworkArchitecture::kNonBlocking, bytes)
            .total_us();
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(ServiceTime, CenterServiceTimesUsesPerNetworkEndpointCounts) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 16, NetworkArchitecture::kNonBlocking, 1024.0);
  const CenterServiceTimes services = center_service_times(config);
  // C=16, N0=16, Pr=24: every network collapses to one switch (d=1) —
  // the paper's observed discontinuity.
  EXPECT_DOUBLE_EQ(services.icn1.switch_latency_us, 10.0);
  EXPECT_DOUBLE_EQ(services.ecn1.switch_latency_us, 10.0);
  EXPECT_DOUBLE_EQ(services.icn2.switch_latency_us, 10.0);
  // Case 1 puts GE inside the cluster, FE outside.
  EXPECT_DOUBLE_EQ(services.icn1.link_latency_us, 80.0);
  EXPECT_DOUBLE_EQ(services.ecn1.link_latency_us, 50.0);

  const SystemConfig wide = paper_scenario(
      HeterogeneityCase::kCase1, 32, NetworkArchitecture::kNonBlocking, 1024.0);
  const CenterServiceTimes wide_services = center_service_times(wide);
  // C=32 > 24 ports: ICN2 back to two stages.
  EXPECT_DOUBLE_EQ(wide_services.icn2.switch_latency_us, 30.0);
  // N0=8 <= 24: cluster networks stay single-switch.
  EXPECT_DOUBLE_EQ(wide_services.icn1.switch_latency_us, 10.0);
}

TEST(ServiceTime, Validation) {
  EXPECT_THROW(network_service_time(fast_ethernet(), 0, kPaperSwitch,
                                    NetworkArchitecture::kNonBlocking, 1024.0),
               hmcs::ConfigError);
  EXPECT_THROW(network_service_time(fast_ethernet(), 4, kPaperSwitch,
                                    NetworkArchitecture::kNonBlocking, 0.0),
               hmcs::ConfigError);
}

}  // namespace
