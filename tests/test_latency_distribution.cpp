// Latency-distribution prediction: closed-form CDF properties and
// agreement with the simulator's exact percentiles.

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/latency_distribution.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

TEST(LatencyDistribution, PureLocalIsExponential) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 1, NetworkArchitecture::kNonBlocking,
      1024.0, 32, 1e-4);
  const LatencyDistribution dist = predict_latency_distribution(config);
  EXPECT_DOUBLE_EQ(dist.remote_weight, 0.0);
  // Exponential facts: median = mean*ln2, p(mean) = 1-1/e.
  EXPECT_NEAR(dist.p50_us(), dist.mean_us() * std::log(2.0),
              1e-6 * dist.mean_us());
  EXPECT_NEAR(dist.cdf(dist.mean_us()), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(LatencyDistribution, CdfIsAProperDistribution) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, 1e-4);
  const LatencyDistribution dist = predict_latency_distribution(config);
  EXPECT_DOUBLE_EQ(dist.cdf(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
  double previous = 0.0;
  for (double t = 10.0; t < 1e5; t *= 1.7) {
    const double value = dist.cdf(t);
    EXPECT_GE(value, previous);
    EXPECT_LE(value, 1.0);
    previous = value;
  }
  EXPECT_GT(dist.cdf(1e7), 0.999999);
}

TEST(LatencyDistribution, QuantilesInvertTheCdf) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase2, 16, NetworkArchitecture::kNonBlocking,
      1024.0, 256, 1e-4);
  const LatencyDistribution dist = predict_latency_distribution(config);
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(dist.cdf(dist.quantile(q)), q, 1e-9);
  }
  EXPECT_LT(dist.p50_us(), dist.p95_us());
  EXPECT_LT(dist.p95_us(), dist.p99_us());
  EXPECT_THROW(dist.quantile(0.0), ConfigError);
  EXPECT_THROW(dist.quantile(1.0), ConfigError);
}

TEST(LatencyDistribution, MixtureMeanMatchesEq15) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, analytic::kPaperRatePerUs);
  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  const LatencyPrediction prediction = predict_latency(config, mva);
  const LatencyDistribution dist = latency_distribution(prediction);
  EXPECT_NEAR(dist.mean_us(), prediction.mean_latency_us,
              1e-9 * prediction.mean_latency_us);
}

TEST(LatencyDistribution, PercentilesTrackTheSimulator) {
  // Moderate load so nothing saturates and all classes occur.
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, 25e-6);
  const LatencyDistribution dist = predict_latency_distribution(config);

  sim::SimOptions options;
  options.measured_messages = 30000;
  options.warmup_messages = 3000;
  options.seed = 4242;
  sim::MultiClusterSim simulator(config, options);
  const sim::SimResult result = simulator.run();

  EXPECT_LT(relative_error(dist.p50_us(), result.p50_latency_us), 0.08)
      << dist.p50_us() << " vs " << result.p50_latency_us;
  EXPECT_LT(relative_error(dist.p95_us(), result.p95_latency_us), 0.08)
      << dist.p95_us() << " vs " << result.p95_latency_us;
  EXPECT_LT(relative_error(dist.p99_us(), result.p99_latency_us), 0.12)
      << dist.p99_us() << " vs " << result.p99_latency_us;
}

TEST(LatencyDistribution, RepeatedPoleHandledSmoothly) {
  // Force ECN1 and ICN2 response times equal: the repeated-pole branch
  // must produce a valid CDF, continuous against a slightly perturbed
  // configuration.
  LatencyDistribution dist;
  dist.remote_weight = 1.0;
  dist.ecn1_rate = 0.01;
  dist.icn2_rate = 0.01;  // exactly the nudged branch
  LatencyDistribution near = dist;
  near.icn2_rate = 0.0100001;
  for (const double t : {50.0, 200.0, 500.0}) {
    EXPECT_NEAR(dist.cdf(t), near.cdf(t), 1e-3);
    EXPECT_GE(dist.cdf(t), 0.0);
    EXPECT_LE(dist.cdf(t), 1.0);
  }
}

TEST(LatencyDistribution, ReliabilityFlagTracksUtilization) {
  const SystemConfig light = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, 25e-6);
  EXPECT_TRUE(predict_latency_distribution(light).reliable);
  const SystemConfig saturated = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, analytic::kPaperRatePerUs);
  EXPECT_FALSE(predict_latency_distribution(saturated).reliable);
}

TEST(LatencyDistribution, SaturatedCentreRejected) {
  SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
      1024.0, 256, analytic::kPaperRatePerUs);
  // kNone leaves the centres saturated at this rate.
  EXPECT_THROW(predict_latency_distribution(config, SourceThrottling::kNone),
               ConfigError);
}

}  // namespace
