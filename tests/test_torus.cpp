// k-ary n-cube torus: structure, Lee distances, bisection width (closed
// form and measured by max-flow on the wired graph).

#include <gtest/gtest.h>

#include "hmcs/netsim/routing.hpp"
#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/torus.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::topology::Graph;
using hmcs::topology::NodeKind;
using hmcs::topology::Torus;

TEST(Torus, CountsFollowKToTheN) {
  const Torus t(4, 2, 2);  // 4-ary 2-cube, 2 endpoints/switch
  EXPECT_EQ(t.num_switches(), 16u);
  EXPECT_EQ(t.num_endpoints(), 32u);
  EXPECT_EQ(Torus(3, 3, 1).num_switches(), 27u);
}

TEST(Torus, RingDistanceWraps) {
  const Torus ring(8, 1, 1);  // plain 8-ring
  EXPECT_EQ(ring.switch_distance(0, 1), 1u);
  EXPECT_EQ(ring.switch_distance(0, 4), 4u);
  EXPECT_EQ(ring.switch_distance(0, 7), 1u);  // wrap
  EXPECT_EQ(ring.switch_distance(2, 6), 4u);
  EXPECT_EQ(ring.switch_distance(5, 5), 0u);
}

TEST(Torus, MultiDimensionalDistanceSumsPerDimension) {
  const Torus t(4, 2, 1);
  // switch index = x + 4*y. (0,0) -> (3,3): min(3,1) + min(3,1) = 2.
  EXPECT_EQ(t.switch_distance(0, 15), 2u);
  // (0,0) -> (2,1): 2 + 1.
  EXPECT_EQ(t.switch_distance(0, 6), 3u);
  const auto coords = t.coordinates(6);
  EXPECT_EQ(coords[0], 2u);
  EXPECT_EQ(coords[1], 1u);
}

TEST(Torus, BisectionWidthClosedForm) {
  EXPECT_EQ(Torus(4, 1, 1).bisection_width(), 2u);   // ring: two cut links
  EXPECT_EQ(Torus(4, 2, 1).bisection_width(), 8u);   // 2*4
  EXPECT_EQ(Torus(8, 2, 1).bisection_width(), 16u);  // 2*8
  EXPECT_EQ(Torus(2, 3, 1).bisection_width(), 4u);   // binary cube: 2^(n-1)
}

TEST(Torus, MeasuredBisectionMatchesClosedFormOnRing) {
  // Canonical halves of a ring (endpoints 0..N/2-1 vs rest) align with
  // consecutive switches, so the min cut is the two ring links.
  const Torus ring(8, 1, 2);
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(ring.build_graph()),
            2u);
}

TEST(Torus, MeasuredBisectionBinaryCube) {
  // 2-ary 3-cube: endpoints 0..3 sit on switches 000,001,010,011 — the
  // x3=0 plane — so the canonical cut is the 4 dimension-3 links.
  const Torus cube(2, 3, 1);
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(cube.build_graph()),
            4u);
}

TEST(Torus, GraphDegreesAreRegular) {
  const Torus t(4, 2, 2);
  const Graph g = t.build_graph();
  EXPECT_EQ(g.count_nodes(NodeKind::kSwitch), 16u);
  // Each switch: 2 endpoints + 2 links per dimension.
  for (hmcs::topology::NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).kind == NodeKind::kSwitch) {
      EXPECT_EQ(g.degree(id), 2u + 4u);
    }
  }
  // Total: 32 endpoint links + 16 switches * 4 / 2 = 32 torus links.
  EXPECT_EQ(g.total_cables(), 64u);
}

TEST(Torus, BinaryArityHasNoDoubleLinks) {
  const Torus cube(2, 2, 1);
  const Graph g = cube.build_graph();
  // 4 switches in a square (4 links) + 4 endpoint links.
  EXPECT_EQ(g.total_cables(), 8u);
  for (hmcs::topology::NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).kind == NodeKind::kSwitch) {
      EXPECT_EQ(g.degree(id), 3u);
    }
  }
}

TEST(Torus, AverageTraversalsMatchesBruteForce) {
  for (const auto& [k, n, per] :
       {std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{4, 2, 2},
        std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{3, 2, 1},
        std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{5, 1, 3}}) {
    const Torus t(k, n, per);
    double sum = 0.0;
    const std::uint64_t total = t.num_endpoints();
    for (std::uint64_t i = 0; i < total; ++i) {
      for (std::uint64_t j = 0; j < total; ++j) {
        if (i != j) sum += static_cast<double>(t.switch_traversals(i, j));
      }
    }
    const double brute =
        sum / (static_cast<double>(total) * (static_cast<double>(total) - 1.0));
    EXPECT_NEAR(t.average_traversals(), brute, 1e-9)
        << "k=" << k << " n=" << n;
  }
}

TEST(Torus, RoutingHopsMatchLeeDistance) {
  const Torus t(4, 2, 1);
  const hmcs::netsim::RoutingTable routes(t.build_graph());
  for (std::uint64_t src = 0; src < 16; src += 3) {
    for (std::uint64_t dst = 0; dst < 16; dst += 5) {
      if (src == dst) continue;
      EXPECT_EQ(routes.switch_hops(static_cast<hmcs::topology::NodeId>(src),
                                   static_cast<hmcs::topology::NodeId>(dst)),
                t.switch_traversals(src, dst));
    }
  }
}

TEST(Torus, Validation) {
  EXPECT_THROW(Torus(1, 2, 1), hmcs::ConfigError);
  EXPECT_THROW(Torus(4, 0, 1), hmcs::ConfigError);
  EXPECT_THROW(Torus(4, 2, 0), hmcs::ConfigError);
  EXPECT_THROW(Torus(100, 4, 1), hmcs::ConfigError);  // k^n cap
}

}  // namespace
