// SweepRunner: grid shape, backend validation, error propagation, and
// the determinism contract — results are bit-identical for any thread
// count, including the rendered CSV bytes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "hmcs/runner/sweep_report.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using runner::Backend;
using runner::PointContext;
using runner::PointResult;
using runner::RunnerOptions;
using runner::SweepResult;
using runner::SweepSpec;

/// Deterministic synthetic backend: latency is a pure function of the
/// configuration and the point seed, so any scheduling difference that
/// leaked into results would be visible.
class StubBackend : public Backend {
 public:
  explicit StubBackend(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext& ctx) const override {
    ++calls;
    PointResult result;
    result.mean_latency_us = static_cast<double>(config.clusters) * 100.0 +
                             config.message_bytes / 64.0 +
                             static_cast<double>(ctx.seed % 97);
    return result;
  }

  mutable std::atomic<int> calls{0};

 private:
  std::string name_;
};

class ThrowingBackend : public Backend {
 public:
  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext&) const override {
    if (config.clusters == 8) throw std::runtime_error("boom at C=8");
    return PointResult{};
  }

 private:
  std::string name_ = "throwing";
};

SweepSpec small_spec() {
  SweepSpec spec;
  spec.id = "t";
  spec.axes.clusters = {1, 2, 4, 8};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.base_seed = 3;
  return spec;
}

TEST(SweepRunner, GridIsPointMajor) {
  const auto a = std::make_shared<StubBackend>("a");
  const auto b = std::make_shared<StubBackend>("b");
  const SweepResult result = run_sweep(small_spec(), {a, b});
  ASSERT_EQ(result.points.size(), 8u);
  ASSERT_EQ(result.cells.size(), 16u);
  EXPECT_EQ(result.backend_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(a->calls.load(), 8);
  EXPECT_EQ(b->calls.load(), 8);
  EXPECT_EQ(result.backend_index("b"), 1u);
  EXPECT_THROW(result.backend_index("c"), ConfigError);
  // Cell (point, backend) addressing agrees with the flat layout.
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(result.at(p, 0).mean_latency_us,
                     result.at(p, 1).mean_latency_us);
  }
}

TEST(SweepRunner, RejectsDuplicateAndNullBackends) {
  const auto a = std::make_shared<StubBackend>("same");
  const auto b = std::make_shared<StubBackend>("same");
  EXPECT_THROW(run_sweep(small_spec(), {a, b}), ConfigError);
  EXPECT_THROW(run_sweep(small_spec(), {a, nullptr}), ConfigError);
  EXPECT_THROW(run_sweep(small_spec(), {}), ConfigError);
}

TEST(SweepRunner, PropagatesBackendExceptions) {
  const auto backend = std::make_shared<ThrowingBackend>();
  for (const std::uint32_t threads : {1u, 4u}) {
    RunnerOptions options;
    options.threads = threads;
    EXPECT_THROW(run_sweep(small_spec(), {backend}, options),
                 std::runtime_error);
  }
}

TEST(SweepRunner, ThreadCountNeverChangesResults) {
  const auto backend = std::make_shared<StubBackend>("stub");
  RunnerOptions serial;
  serial.threads = 1;
  const SweepResult reference = run_sweep(small_spec(), {backend}, serial);
  for (const std::uint32_t threads : {2u, 3u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    const SweepResult result = run_sweep(small_spec(), {backend}, options);
    ASSERT_EQ(result.cells.size(), reference.cells.size());
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      // Byte-level equality: determinism means identical bits, not just
      // values within tolerance.
      EXPECT_EQ(std::memcmp(&result.cells[i].mean_latency_us,
                            &reference.cells[i].mean_latency_us,
                            sizeof(double)),
                0);
    }
  }
}

// The acceptance-criterion regression: a DES-backed fig6-style sweep
// rendered to CSV is byte-identical at 1 and 8 threads.
TEST(SweepRunner, DesSweepCsvIsByteIdenticalAcrossThreadCounts) {
  SweepSpec spec;
  spec.id = "fig6_small";
  spec.axes.clusters = {1, 2, 4, 8};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.axes.architectures = {analytic::NetworkArchitecture::kBlocking};
  spec.base_seed = 3;

  runner::DesBackend::Options des;
  des.sim.measured_messages = 400;
  des.sim.warmup_messages = 80;
  const std::vector<std::shared_ptr<Backend>> backends{
      std::make_shared<runner::AnalyticBackend>(),
      std::make_shared<runner::DesBackend>(des)};

  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions wide;
  wide.threads = 8;
  const std::string csv_serial =
      runner::sweep_csv(run_sweep(spec, backends, serial)).to_string();
  const std::string csv_wide =
      runner::sweep_csv(run_sweep(spec, backends, wide)).to_string();
  EXPECT_EQ(csv_serial, csv_wide);
  EXPECT_FALSE(csv_serial.empty());
}

}  // namespace
