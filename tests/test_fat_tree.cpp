// Fat-tree closed forms (eqs. 12-14, Proposition 1, Theorem 1) and the
// explicit constructed instances. The paper's worked example (Figure 3:
// N=16, Pr=8 => d=2, k=6, bisection 8) is pinned exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using hmcs::topology::FatTree;
using hmcs::topology::Graph;
using hmcs::topology::NodeKind;

TEST(FatTree, PaperWorkedExample) {
  // Figure 3 of the paper: 16 nodes on 8-port switches.
  const FatTree tree(16, 8);
  EXPECT_EQ(tree.num_stages(), 2u);        // eq. (12)
  EXPECT_EQ(tree.num_switches(), 6u);      // eq. (13): 4 + 2
  EXPECT_EQ(tree.switches_in_stage(1), 4u);
  EXPECT_EQ(tree.switches_in_stage(2), 2u);
  EXPECT_EQ(tree.bisection_width(), 8u);   // eq. (14): N/2
  EXPECT_EQ(tree.worst_case_traversals(), 3u);  // 2d-1
}

TEST(FatTree, PaperExperimentConfiguration) {
  // N=256 on 24-port switches (Table 2): two stages.
  const FatTree tree(256, 24);
  EXPECT_EQ(tree.num_stages(), 2u);
  // eq. (13): (2-1)*ceil(256/12) + ceil(256/24) = 22 + 11 = 33.
  EXPECT_EQ(tree.num_switches(), 33u);
  EXPECT_EQ(tree.bisection_width(), 128u);
}

TEST(FatTree, SingleSwitchCollapseAtSixteenNodes) {
  // The paper's observed C=16 discontinuity: 16 endpoints on 24-port
  // switches need a single switch (d=1), dropping the fabric latency.
  const FatTree tree(16, 24);
  EXPECT_EQ(tree.num_stages(), 1u);
  EXPECT_EQ(tree.num_switches(), 1u);
  EXPECT_EQ(tree.worst_case_traversals(), 1u);
}

TEST(FatTree, DegenerateSizes) {
  const FatTree one(1, 8);
  EXPECT_EQ(one.num_stages(), 0u);
  EXPECT_EQ(one.num_switches(), 0u);
  EXPECT_EQ(one.bisection_width(), 0u);
  EXPECT_EQ(one.worst_case_traversals(), 0u);

  const FatTree two(2, 8);
  EXPECT_EQ(two.num_stages(), 1u);
  EXPECT_EQ(two.num_switches(), 1u);
  EXPECT_EQ(two.bisection_width(), 1u);
  EXPECT_EQ(two.switch_traversals(0, 1), 1u);
}

TEST(FatTree, RejectsBadParameters) {
  EXPECT_THROW(FatTree(0, 8), hmcs::ConfigError);
  EXPECT_THROW(FatTree(16, 7), hmcs::ConfigError);   // odd radix
  EXPECT_THROW(FatTree(16, 2), hmcs::ConfigError);   // radix < 4
}

TEST(FatTree, TraversalsFollowMeetStage) {
  const FatTree tree(64, 8);  // m=4: d=3 (4^3=64 >= 32 > 16)
  ASSERT_EQ(tree.num_stages(), 3u);
  EXPECT_EQ(tree.switch_traversals(0, 0), 0u);
  EXPECT_EQ(tree.switch_traversals(0, 3), 1u);    // same stage-1 block of 4
  EXPECT_EQ(tree.switch_traversals(0, 15), 3u);   // same stage-2 block of 16
  EXPECT_EQ(tree.switch_traversals(0, 16), 5u);   // cross-pod, top stage
  EXPECT_EQ(tree.switch_traversals(63, 0), 5u);
  EXPECT_EQ(tree.worst_case_traversals(), 5u);
}

TEST(FatTree, AverageTraversalsBelowWorstCase) {
  const FatTree tree(64, 8);
  const double avg = tree.average_traversals();
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, static_cast<double>(tree.worst_case_traversals()));
}

TEST(FatTree, AverageTraversalsMatchesBruteForce) {
  for (const std::uint64_t n : {8ULL, 16ULL, 48ULL, 64ULL}) {
    const FatTree tree(n, 8);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        if (i != j) sum += tree.switch_traversals(i, j);
      }
    }
    const double brute = sum / (static_cast<double>(n) * (static_cast<double>(n) - 1.0));
    EXPECT_NEAR(tree.average_traversals(), brute, 1e-9) << "N=" << n;
  }
}

TEST(FatTree, GraphHasDeclaredShape) {
  const FatTree tree(16, 8);
  const Graph g = tree.build_graph();
  EXPECT_EQ(g.count_nodes(NodeKind::kEndpoint), 16u);
  EXPECT_EQ(g.count_nodes(NodeKind::kSwitch), 6u);
  // 16 endpoint links + 16 stage1->stage2 cables.
  EXPECT_EQ(g.total_cables(), 32u);
  // Every stage-1 switch uses all 8 ports: 4 down, 4 up.
  for (hmcs::topology::NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).kind == NodeKind::kSwitch) {
      EXPECT_EQ(g.degree(id), 8u);
    }
  }
}

// ---- Property sweep: Proposition 1 + Theorem 1 on real instances -------

struct FatTreeCase {
  std::uint64_t endpoints;
  std::uint32_t radix;
};

class FatTreeProperties : public ::testing::TestWithParam<FatTreeCase> {};

TEST_P(FatTreeProperties, Proposition1SwitchCount) {
  const auto [n, pr] = GetParam();
  const FatTree tree(n, pr);
  const std::uint64_t d = tree.num_stages();
  // eq. (13), recomputed independently here.
  const std::uint64_t expected =
      (d - 1) * hmcs::ceil_div(n, pr / 2) + hmcs::ceil_div(n, pr);
  EXPECT_EQ(tree.num_switches(), expected);
  // And the constructed graph contains exactly that many switches.
  EXPECT_EQ(tree.build_graph().count_nodes(NodeKind::kSwitch), expected);
}

TEST_P(FatTreeProperties, Theorem1FullBisectionOnUniformInstances) {
  const auto [n, pr] = GetParam();
  const FatTree tree(n, pr);
  if (!tree.is_uniform()) GTEST_SKIP() << "ragged instance, wiring not regular";
  const Graph g = tree.build_graph();
  // Max-flow/min-cut between the canonical halves equals ceil(N/2):
  // Definition 1's full bisection bandwidth, measured on actual wiring.
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(g), hmcs::ceil_div(n, 2));
  EXPECT_TRUE(hmcs::topology::has_full_bisection(g));
}

TEST_P(FatTreeProperties, StageCountMatchesLogFormula) {
  const auto [n, pr] = GetParam();
  const FatTree tree(n, pr);
  const double m = pr / 2.0;
  const double d_real =
      std::ceil(std::log2(static_cast<double>(n) / 2.0) / std::log2(m));
  EXPECT_DOUBLE_EQ(static_cast<double>(tree.num_stages()),
                   std::max(1.0, d_real));
}

TEST_P(FatTreeProperties, EveryPairMeets) {
  const auto [n, pr] = GetParam();
  const FatTree tree(n, pr);
  const std::uint64_t step = std::max<std::uint64_t>(1, n / 17);
  for (std::uint64_t i = 0; i < n; i += step) {
    for (std::uint64_t j = 0; j < n; j += step) {
      const auto t = tree.switch_traversals(i, j);
      if (i == j) {
        EXPECT_EQ(t, 0u);
      } else {
        EXPECT_GE(t, 1u);
        EXPECT_LE(t, tree.worst_case_traversals());
        EXPECT_EQ(t % 2, 1u);  // up-down paths cross an odd switch count
        EXPECT_EQ(t, tree.switch_traversals(j, i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FatTreeProperties,
    ::testing::Values(FatTreeCase{8, 8}, FatTreeCase{16, 8}, FatTreeCase{32, 8},
                      FatTreeCase{48, 8}, FatTreeCase{64, 8},
                      FatTreeCase{128, 8}, FatTreeCase{16, 24},
                      FatTreeCase{24, 24}, FatTreeCase{48, 24},
                      FatTreeCase{256, 24}, FatTreeCase{288, 24},
                      FatTreeCase{64, 4}, FatTreeCase{100, 20},
                      FatTreeCase{2, 4}, FatTreeCase{1024, 32}),
    [](const ::testing::TestParamInfo<FatTreeCase>& param_info) {
      return "N" + std::to_string(param_info.param.endpoints) + "_Pr" +
             std::to_string(param_info.param.radix);
    });

}  // namespace
