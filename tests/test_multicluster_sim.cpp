// Behavioural tests of the validation simulator itself: reproducibility,
// routing accounting, warm-up handling, and the paper's run protocol.

#include <gtest/gtest.h>

#include <memory>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/simcore/warmup.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using analytic::HeterogeneityCase;
using analytic::NetworkArchitecture;
using analytic::paper_scenario;
using sim::MultiClusterSim;
using sim::SimOptions;
using sim::SimResult;

analytic::SystemConfig small_config() {
  return paper_scenario(HeterogeneityCase::kCase1, 4,
                        NetworkArchitecture::kNonBlocking, 1024.0, 32, 1e-4);
}

SimOptions fast_options(std::uint64_t seed = 7) {
  SimOptions options;
  options.measured_messages = 3000;
  options.warmup_messages = 300;
  options.seed = seed;
  return options;
}

TEST(MultiClusterSim, SameSeedSameResult) {
  MultiClusterSim a(small_config(), fast_options());
  MultiClusterSim b(small_config(), fast_options());
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  EXPECT_DOUBLE_EQ(ra.mean_latency_us, rb.mean_latency_us);
  EXPECT_EQ(ra.events_executed, rb.events_executed);
  EXPECT_DOUBLE_EQ(ra.window_duration_us, rb.window_duration_us);
}

TEST(MultiClusterSim, DifferentSeedsDiffer) {
  MultiClusterSim a(small_config(), fast_options(1));
  MultiClusterSim b(small_config(), fast_options(2));
  EXPECT_NE(a.run().mean_latency_us, b.run().mean_latency_us);
}

TEST(MultiClusterSim, MeasuresExactlyRequestedMessages) {
  MultiClusterSim simulator(small_config(), fast_options());
  const SimResult result = simulator.run();
  EXPECT_EQ(result.messages_measured, 3000u);
  EXPECT_GT(result.window_duration_us, 0.0);
  EXPECT_GT(result.events_executed, 3000u);
}

TEST(MultiClusterSim, RemoteFractionMatchesEq8) {
  // C=4, N0=8: P = 24/31.
  MultiClusterSim simulator(small_config(), fast_options());
  const SimResult result = simulator.run();
  EXPECT_NEAR(result.remote_fraction, 24.0 / 31.0, 0.03);
}

TEST(MultiClusterSim, RemoteMessagesSlowerThanLocal) {
  MultiClusterSim simulator(small_config(), fast_options());
  const SimResult result = simulator.run();
  EXPECT_GT(result.mean_remote_latency_us, result.mean_local_latency_us);
  // Overall mean lies between the two class means.
  EXPECT_GT(result.mean_latency_us, result.mean_local_latency_us);
  EXPECT_LT(result.mean_latency_us, result.mean_remote_latency_us);
}

TEST(MultiClusterSim, SingleClusterHasNoRemoteTraffic) {
  const auto config = paper_scenario(HeterogeneityCase::kCase1, 1,
                                     NetworkArchitecture::kNonBlocking,
                                     1024.0, 32, 1e-4);
  MultiClusterSim simulator(config, fast_options());
  const SimResult result = simulator.run();
  EXPECT_DOUBLE_EQ(result.remote_fraction, 0.0);
  EXPECT_EQ(result.ecn1.departures, 0u);
  EXPECT_EQ(result.icn2.departures, 0u);
  EXPECT_EQ(result.icn1.departures, 3000u);
}

TEST(MultiClusterSim, FullyDispersedHasOnlyRemoteTraffic) {
  const auto config = paper_scenario(HeterogeneityCase::kCase1, 32,
                                     NetworkArchitecture::kNonBlocking,
                                     1024.0, 32, 1e-4);
  MultiClusterSim simulator(config, fast_options());
  const SimResult result = simulator.run();
  EXPECT_DOUBLE_EQ(result.remote_fraction, 1.0);
  EXPECT_EQ(result.icn1.departures, 0u);
  // Each remote message crosses two ECN1 stations and ICN2 once; a few
  // messages straddle the measurement-window edges.
  EXPECT_NEAR(static_cast<double>(result.icn2.departures),
              static_cast<double>(result.ecn1.departures) / 2.0, 40.0);
}

TEST(MultiClusterSim, EffectiveRateBelowOffered) {
  // Heavy load: the closed loop throttles sources (assumption 4).
  const auto config = paper_scenario(HeterogeneityCase::kCase1, 4,
                                     NetworkArchitecture::kNonBlocking,
                                     1024.0, 256, analytic::kPaperRatePerUs);
  MultiClusterSim simulator(config, fast_options());
  const SimResult result = simulator.run();
  EXPECT_LT(result.effective_rate_per_us, config.generation_rate_per_us);
  EXPECT_GT(result.total_avg_queue_length, 1.0);
}

TEST(MultiClusterSim, DeterministicServiceReducesVariance) {
  auto exponential = fast_options();
  auto deterministic = fast_options();
  deterministic.service_distribution = sim::ServiceDistribution::kDeterministic;
  MultiClusterSim a(small_config(), exponential);
  MultiClusterSim b(small_config(), deterministic);
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  // M/D/1 waits are shorter than M/M/1 (PK formula halves the queue).
  EXPECT_LT(rb.mean_latency_us, ra.mean_latency_us);
}

TEST(MultiClusterSim, PrecisionStoppingTightensTheInterval) {
  auto fixed = fast_options();
  fixed.measured_messages = 1000;

  auto precise = fast_options();
  precise.measured_messages = 1000;  // minimum only
  precise.target_relative_ci = 0.01;
  precise.message_cap = 200000;

  MultiClusterSim fixed_sim(small_config(), fixed);
  MultiClusterSim precise_sim(small_config(), precise);
  const SimResult fixed_result = fixed_sim.run();
  const SimResult precise_result = precise_sim.run();

  EXPECT_GT(precise_result.messages_measured,
            fixed_result.messages_measured);
  EXPECT_LE(precise_result.latency_ci.half_width,
            0.0105 * precise_result.mean_latency_us);
  EXPECT_GT(fixed_result.latency_ci.half_width,
            precise_result.latency_ci.half_width);
}

TEST(MultiClusterSim, MessageCapBoundsPrecisionRuns) {
  auto options = fast_options();
  options.measured_messages = 500;
  options.target_relative_ci = 1e-6;  // unreachable
  options.message_cap = 3000;
  MultiClusterSim simulator(small_config(), options);
  const SimResult result = simulator.run();
  EXPECT_EQ(result.messages_measured, 3000u);
}

TEST(MultiClusterSim, HistogramAvailableAfterRun) {
  MultiClusterSim simulator(small_config(), fast_options());
  EXPECT_THROW(simulator.latency_histogram(), hmcs::ConfigError);
  const SimResult result = simulator.run();
  const auto& histogram = simulator.latency_histogram();
  EXPECT_EQ(histogram.count(), result.messages_measured);
  EXPECT_EQ(histogram.overflow(), 0u);
}

TEST(MultiClusterSim, DefaultWarmupSurvivesMserAudit) {
  // Run with NO warm-up, then let MSER find the transient: it should be
  // comfortably below the protocol's default 2000-message discard,
  // confirming the paper's fixed warm-up is adequate at this scale.
  const auto config = paper_scenario(HeterogeneityCase::kCase1, 4,
                                     NetworkArchitecture::kNonBlocking,
                                     1024.0, 256, analytic::kPaperRatePerUs);
  SimOptions options;
  options.measured_messages = 12000;
  options.warmup_messages = 0;
  options.seed = 77;
  MultiClusterSim simulator(config, options);
  EXPECT_THROW(simulator.measured_latencies(), hmcs::ConfigError);
  simulator.run();
  const auto analysis =
      hmcs::simcore::mser_warmup(simulator.measured_latencies());
  EXPECT_LT(analysis.truncation_samples, 2000u);
}

TEST(MultiClusterSim, RunIsSingleShot) {
  MultiClusterSim simulator(small_config(), fast_options());
  simulator.run();
  EXPECT_THROW(simulator.run(), hmcs::ConfigError);
}

TEST(MultiClusterSim, MaxEventsGuardTrips) {
  auto options = fast_options();
  options.max_events = 100;  // far too few to finish
  MultiClusterSim simulator(small_config(), options);
  EXPECT_THROW(simulator.run(), hmcs::ConfigError);
}

TEST(MultiClusterSim, CustomTrafficPatternIsHonoured) {
  auto options = fast_options();
  const auto space = workload::NodeSpace::uniform(4, 8);
  options.traffic = std::make_shared<workload::LocalizedTraffic>(space, 1.0);
  MultiClusterSim simulator(small_config(), options);
  const SimResult result = simulator.run();
  EXPECT_DOUBLE_EQ(result.remote_fraction, 0.0);
}

TEST(MultiClusterSim, HeterogeneousConfigRuns) {
  analytic::ClusterOfClustersConfig config;
  analytic::ClusterSpec big;
  big.nodes = 12;
  big.icn1 = analytic::gigabit_ethernet();
  big.ecn1 = analytic::fast_ethernet();
  big.generation_rate_per_us = 1e-4;
  analytic::ClusterSpec small;
  small.nodes = 4;
  small.icn1 = analytic::fast_ethernet();
  small.ecn1 = analytic::fast_ethernet();
  small.generation_rate_per_us = 2e-4;
  config.clusters = {big, small};
  config.icn2 = analytic::fast_ethernet();
  config.switch_params = {24, 10.0};
  config.architecture = analytic::NetworkArchitecture::kNonBlocking;
  config.message_bytes = 512.0;

  MultiClusterSim simulator(config, fast_options());
  const SimResult result = simulator.run();
  EXPECT_GT(result.mean_latency_us, 0.0);
  // P for ragged clusters: weighted mix; sanity-bound it.
  EXPECT_GT(result.remote_fraction, 0.2);
  EXPECT_LT(result.remote_fraction, 0.9);
}

TEST(MultiClusterSim, RejectsDegenerateRuns) {
  const auto one_node = paper_scenario(HeterogeneityCase::kCase1, 1,
                                       NetworkArchitecture::kNonBlocking,
                                       1024.0, 1, 1e-4);
  // A one-node system has no possible destinations.
  EXPECT_THROW(MultiClusterSim(one_node, fast_options()), hmcs::ConfigError);
}

}  // namespace
