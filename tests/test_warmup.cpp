// MSER warm-up truncation.

#include <gtest/gtest.h>

#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/warmup.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::simcore::mser_warmup;
using hmcs::simcore::Rng;
using hmcs::simcore::WarmupAnalysis;

TEST(Warmup, StationarySeriesNeedsNoTruncation) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.exponential(10.0));
  const WarmupAnalysis analysis = mser_warmup(samples);
  // A few batches of tolerance: MSER can trim noise batches.
  EXPECT_LE(analysis.truncation_batches, 20u);
  EXPECT_NEAR(analysis.truncated_mean, 10.0, 0.8);
}

TEST(Warmup, DetectsInitialTransient) {
  // 300 inflated samples (the queue filling up) then stationarity.
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back(100.0 - i * 0.25 + rng.exponential(5.0));
  }
  for (int i = 0; i < 3000; ++i) samples.push_back(rng.exponential(10.0));
  const WarmupAnalysis analysis = mser_warmup(samples);
  EXPECT_GE(analysis.truncation_samples, 250u);
  EXPECT_LE(analysis.truncation_samples, 450u);
  EXPECT_NEAR(analysis.truncated_mean, 10.0, 1.0);
}

TEST(Warmup, ConfirmsPaperProtocolWarmupIsSufficient) {
  // The simulator discards 2000 deliveries by default; a series whose
  // first 2000 entries are already dropped should need essentially no
  // further truncation.
  Rng rng(7);
  std::vector<double> warmed;
  for (int i = 0; i < 10000; ++i) warmed.push_back(rng.exponential(20.0));
  const WarmupAnalysis analysis = mser_warmup(warmed);
  EXPECT_LT(static_cast<double>(analysis.truncation_samples), 0.05 * 10000);
}

TEST(Warmup, BatchSizeControlsGranularity) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(500.0);
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.exponential(10.0));
  const WarmupAnalysis fine = mser_warmup(samples, 1);
  const WarmupAnalysis coarse = mser_warmup(samples, 25);
  EXPECT_EQ(fine.truncation_samples % 1, 0u);
  EXPECT_EQ(coarse.truncation_samples % 25, 0u);
  EXPECT_GE(fine.truncation_samples, 100u);
  EXPECT_GE(coarse.truncation_samples, 100u);
}

TEST(Warmup, TruncationCappedAtHalfTheSeries) {
  // Even a pathological downward ramp cannot eat more than half.
  std::vector<double> ramp;
  for (int i = 0; i < 1000; ++i) ramp.push_back(1000.0 - i);
  const WarmupAnalysis analysis = mser_warmup(ramp);
  EXPECT_LE(analysis.truncation_batches, analysis.num_batches / 2);
}

TEST(Warmup, Validation) {
  EXPECT_THROW(mser_warmup({1.0, 2.0, 3.0}, 1), hmcs::ConfigError);
  EXPECT_THROW(mser_warmup(std::vector<double>(100, 1.0), 0),
               hmcs::ConfigError);
}

}  // namespace
