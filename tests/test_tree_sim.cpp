// Discrete-event cross-validation of the recursive tree solver on
// genuinely nested (depth >= 2 network levels beyond the root)
// heterogeneous topologies — the shapes the flat pipeline cannot
// express, so TreeSim is the only independent check.

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/sim/tree_sim.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;

double relative_error(double observed, double expected) {
  return std::abs(observed - expected) / expected;
}

analytic::TreeLatencyPrediction analytic_prediction(
    const analytic::ModelTree& tree) {
  analytic::TreeModelOptions options;
  options.fixed_point.method = analytic::SourceThrottling::kBisection;
  options.fixed_point.queue_rule = analytic::QueueLengthRule::kConsistent;
  return analytic::predict_model_tree(tree, options);
}

sim::TreeSimResult simulate(const analytic::ModelTree& tree,
                            std::uint64_t seed) {
  sim::TreeSimOptions options;
  options.measured_messages = 8000;
  options.warmup_messages = 2000;
  options.seed = seed;
  sim::TreeSim sim(tree, options);
  return sim.run();
}

/// Depth-3 heterogeneous topology #1: fast-ethernet backbone over two
/// unequal gigabit campuses, each with unequal leaf groups.
analytic::ModelTree campuses_tree() {
  using analytic::ModelNode;
  ModelNode campus_a = ModelNode::internal(
      analytic::gigabit_ethernet(), analytic::fast_ethernet(),
      {ModelNode::leaf(12, 1e-4), ModelNode::leaf(6, 0.5e-4)}, "campus-a");
  ModelNode campus_b = ModelNode::internal(
      analytic::gigabit_ethernet(), analytic::fast_ethernet(),
      {ModelNode::leaf(20, 0.75e-4)}, "campus-b");
  analytic::ModelTree tree;
  tree.root =
      ModelNode::internal(analytic::fast_ethernet(), {campus_a, campus_b});
  tree.switch_params = {24, 10.0};
  tree.message_bytes = 1024.0;
  return tree;
}

/// Depth-3 heterogeneous topology #2: three subtrees with different
/// egress technologies and rates — heterogeneity at every level.
analytic::ModelTree mixed_egress_tree() {
  using analytic::ModelNode;
  ModelNode left = ModelNode::internal(
      analytic::gigabit_ethernet(), analytic::gigabit_ethernet(),
      {ModelNode::leaf(16, 0.5e-4)}, "left");
  ModelNode mid = ModelNode::internal(
      analytic::fast_ethernet(), analytic::fast_ethernet(),
      {ModelNode::leaf(8, 1e-4), ModelNode::leaf(8, 1e-4)}, "mid");
  ModelNode right = ModelNode::internal(
      analytic::gigabit_ethernet(), analytic::fast_ethernet(),
      {ModelNode::leaf(10, 0.25e-4)}, "right");
  analytic::ModelTree tree;
  tree.root = ModelNode::internal(analytic::gigabit_ethernet(),
                                  {left, mid, right});
  tree.switch_params = {24, 10.0};
  tree.message_bytes = 512.0;
  return tree;
}

TEST(TreeSim, MatchesAnalyticOnHeterogeneousCampuses) {
  const analytic::ModelTree tree = campuses_tree();
  const analytic::TreeLatencyPrediction model = analytic_prediction(tree);
  ASSERT_TRUE(model.fixed_point_converged);

  const sim::TreeSimResult sim_result = simulate(tree, 20240615);
  EXPECT_EQ(sim_result.messages_measured, 8000u);
  EXPECT_LT(relative_error(sim_result.mean_latency_us, model.mean_latency_us),
            0.15)
      << "sim " << sim_result.mean_latency_us << "us vs model "
      << model.mean_latency_us << "us";

  // Per-processor delivered rate agrees with the throttled offered rate.
  const double model_rate =
      model.lambda_offered_total * model.effective_rate_scale /
      static_cast<double>(tree.total_processors());
  EXPECT_LT(relative_error(sim_result.effective_rate_per_us, model_rate),
            0.15);
}

TEST(TreeSim, MatchesAnalyticOnMixedEgressTree) {
  const analytic::ModelTree tree = mixed_egress_tree();
  const analytic::TreeLatencyPrediction model = analytic_prediction(tree);
  ASSERT_TRUE(model.fixed_point_converged);

  const sim::TreeSimResult sim_result = simulate(tree, 20240616);
  EXPECT_LT(relative_error(sim_result.mean_latency_us, model.mean_latency_us),
            0.15)
      << "sim " << sim_result.mean_latency_us << "us vs model "
      << model.mean_latency_us << "us";
}

TEST(TreeSim, CenterStatsLineUpWithAnalyticCenters) {
  const analytic::ModelTree tree = campuses_tree();
  const analytic::TreeLatencyPrediction model = analytic_prediction(tree);
  const sim::TreeSimResult sim_result = simulate(tree, 20240617);

  ASSERT_EQ(sim_result.centers.size(), model.centers.size());
  for (std::size_t c = 0; c < model.centers.size(); ++c) {
    EXPECT_EQ(sim_result.centers[c].path, model.centers[c].path);
    EXPECT_EQ(sim_result.centers[c].egress, model.centers[c].egress);
    // Busy centres agree on utilisation to simulation tolerance.
    if (model.centers[c].utilization > 0.05) {
      EXPECT_LT(relative_error(sim_result.centers[c].utilization,
                               model.centers[c].utilization),
                0.25)
          << model.centers[c].path;
    }
  }
}

TEST(TreeSim, DeterministicForFixedSeed) {
  const analytic::ModelTree tree = mixed_egress_tree();
  const sim::TreeSimResult a = simulate(tree, 7);
  const sim::TreeSimResult b = simulate(tree, 7);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.events_executed, b.events_executed);

  const sim::TreeSimResult c = simulate(tree, 8);
  EXPECT_NE(a.mean_latency_us, c.mean_latency_us);
}

TEST(TreeSim, RejectsDegenerateTrees) {
  analytic::ModelTree tree;
  tree.root = analytic::ModelNode::internal(
      analytic::fast_ethernet(), {analytic::ModelNode::leaf(1, 1e-4)});
  // One processor: no destinations to send to.
  EXPECT_THROW(sim::TreeSim(tree, {}), hmcs::ConfigError);

  tree.root = analytic::ModelNode::internal(
      analytic::fast_ethernet(),
      {analytic::ModelNode::leaf(4, 0.0), analytic::ModelNode::leaf(4, 1e-4)});
  // A zero-rate leaf never releases its closed-loop sources.
  EXPECT_THROW(sim::TreeSim(tree, {}), hmcs::ConfigError);
}

}  // namespace
