// Linear switch array (the paper's blocking interconnect, Section 5.3):
// eq. (17) switch count, eq. (19) average traversals, bisection width 1.

#include <gtest/gtest.h>

#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::topology::Graph;
using hmcs::topology::LinearArray;
using hmcs::topology::NodeKind;

TEST(LinearArray, SwitchCountEq17) {
  EXPECT_EQ(LinearArray(256, 24).num_switches(), 11u);  // ceil(256/24)
  EXPECT_EQ(LinearArray(24, 24).num_switches(), 1u);
  EXPECT_EQ(LinearArray(25, 24).num_switches(), 2u);
  EXPECT_EQ(LinearArray(1, 24).num_switches(), 1u);
}

TEST(LinearArray, EndpointMapping) {
  const LinearArray chain(50, 24);
  EXPECT_EQ(chain.switch_of(0), 0u);
  EXPECT_EQ(chain.switch_of(23), 0u);
  EXPECT_EQ(chain.switch_of(24), 1u);
  EXPECT_EQ(chain.switch_of(49), 2u);
  EXPECT_THROW(chain.switch_of(50), hmcs::ConfigError);
}

TEST(LinearArray, TraversalsAreChainDistancePlusOne) {
  const LinearArray chain(72, 24);  // 3 switches
  EXPECT_EQ(chain.switch_traversals(0, 0), 0u);
  EXPECT_EQ(chain.switch_traversals(0, 1), 1u);    // same switch
  EXPECT_EQ(chain.switch_traversals(0, 30), 2u);   // neighbours
  EXPECT_EQ(chain.switch_traversals(0, 71), 3u);   // ends of the chain
  EXPECT_EQ(chain.switch_traversals(71, 0), 3u);   // symmetric
}

TEST(LinearArray, PaperAverageApproximatesExact) {
  // eq. (19) uses (k+1)/3; the exact uniform-pair expectation is close
  // for long chains.
  const LinearArray chain(240, 24);  // k = 10
  EXPECT_DOUBLE_EQ(chain.paper_average_traversals(), 11.0 / 3.0);
  const double exact = chain.average_traversals();
  EXPECT_GT(exact, 1.0);
  // Exact = E|i-j| + 1 ~ k/3 + 1; paper ~ (k+1)/3. Within ~30%.
  EXPECT_NEAR(exact, chain.paper_average_traversals(),
              0.35 * chain.paper_average_traversals());
}

TEST(LinearArray, AverageTraversalsMatchesBruteForce) {
  const LinearArray chain(50, 8);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    for (std::uint64_t j = 0; j < 50; ++j) {
      if (i != j) sum += static_cast<double>(chain.switch_traversals(i, j));
    }
  }
  EXPECT_NEAR(chain.average_traversals(), sum / (50.0 * 49.0), 1e-9);
}

TEST(LinearArray, BisectionWidthIsOne) {
  EXPECT_EQ(LinearArray(256, 24).bisection_width(), 1u);
  EXPECT_FALSE(LinearArray(256, 24).is_full_bisection());
  // Single-switch degenerate chain is effectively a crossbar.
  EXPECT_EQ(LinearArray(16, 24).bisection_width(), 8u);
  EXPECT_TRUE(LinearArray(16, 24).is_full_bisection());
  EXPECT_EQ(LinearArray(1, 24).bisection_width(), 0u);
}

TEST(LinearArray, MeasuredBisectionMatchesClaim) {
  // The max-flow measurement on the constructed graph confirms the
  // closed form: one chain link separates the halves.
  const LinearArray chain(96, 24);  // 4 switches; halves split at chain mid
  const Graph g = chain.build_graph();
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(g), 1u);
  EXPECT_FALSE(hmcs::topology::has_full_bisection(g));

  const LinearArray single(16, 24);
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(single.build_graph()),
            8u);
}

TEST(LinearArray, GraphShape) {
  const LinearArray chain(50, 24);
  const Graph g = chain.build_graph();
  EXPECT_EQ(g.count_nodes(NodeKind::kEndpoint), 50u);
  EXPECT_EQ(g.count_nodes(NodeKind::kSwitch), 3u);
  // 50 endpoint links + 2 chain links.
  EXPECT_EQ(g.total_cables(), 52u);
}

TEST(LinearArray, RejectsBadParameters) {
  EXPECT_THROW(LinearArray(0, 8), hmcs::ConfigError);
  EXPECT_THROW(LinearArray(8, 2), hmcs::ConfigError);
}

class LinearArraySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearArraySweep, InvariantsHold) {
  const std::uint64_t n = GetParam();
  const LinearArray chain(n, 24);
  EXPECT_EQ(chain.num_switches(), (n + 23) / 24);
  if (n >= 2) {
    const double avg = chain.average_traversals();
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, static_cast<double>(chain.num_switches()));
    if (chain.num_switches() > 1 && (n / 2) % 24 == 0) {
      // The canonical index split measures the true width-1 chain cut
      // only when it falls on a switch boundary; otherwise it must also
      // sever endpoint links shared with the other half.
      EXPECT_EQ(hmcs::topology::measured_bisection_cables(chain.build_graph()),
                1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearArraySweep,
                         ::testing::Values(1, 2, 16, 24, 25, 48, 96, 256, 257));

}  // namespace
