// Tests for the Prometheus text exposition writer: metric-name
// sanitisation, histogram bucket cumulativity, label escaping (incl.
// UTF-8 pass-through), and empty-registry output.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/prometheus.hpp"

namespace {

using hmcs::obs::MetricsSnapshot;
using hmcs::obs::PrometheusOptions;
using hmcs::obs::prometheus_escape_label;
using hmcs::obs::prometheus_metric_name;
using hmcs::obs::Registry;
using hmcs::obs::render_prometheus;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(Prometheus, MetricNameSanitisation) {
  EXPECT_EQ(prometheus_metric_name("serve.request.wall_time"),
            "serve_request_wall_time");
  EXPECT_EQ(prometheus_metric_name("sim.center.icn-1.utilization"),
            "sim_center_icn_1_utilization");
  EXPECT_EQ(prometheus_metric_name("already_legal:name"),
            "already_legal:name");
  EXPECT_EQ(prometheus_metric_name("7seas"), "_7seas");
  EXPECT_EQ(prometheus_metric_name(""), "_");
  EXPECT_EQ(prometheus_metric_name("sp ace/slash"), "sp_ace_slash");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label("line\nbreak"), "line\\nbreak");
  // UTF-8 passes through untouched.
  EXPECT_EQ(prometheus_escape_label("caf\xc3\xa9 \xe2\x9c\x93"),
            "caf\xc3\xa9 \xe2\x9c\x93");
}

TEST(Prometheus, EmptySnapshotRendersEmpty) {
  const MetricsSnapshot empty;
  EXPECT_EQ(render_prometheus(empty), "");
}

TEST(Prometheus, CounterAndGaugeSamples) {
  Registry registry;
  registry.counter("serve.requests.ok")->inc(41);
  registry.gauge("sweep.warmup.cutoff")->set(2.5);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE serve_requests_ok counter\n"
                      "serve_requests_ok 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sweep_warmup_cutoff gauge\n"
                      "sweep_warmup_cutoff 2.5\n"),
            std::string::npos);
}

TEST(Prometheus, ConstantLabelsOnEverySample) {
  Registry registry;
  registry.counter("c.one")->inc();
  registry.gauge("g.two")->set(1.0);
  PrometheusOptions options;
  options.labels = {{"instance", "hmcs:7777"}, {"quote", "a\"b"}};
  const std::string text = render_prometheus(registry, options);
  EXPECT_NE(text.find("c_one{instance=\"hmcs:7777\",quote=\"a\\\"b\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("g_two{instance=\"hmcs:7777\",quote=\"a\\\"b\"} 1"),
            std::string::npos);
}

TEST(Prometheus, StatRendersAsSummaryWithMinMax) {
  Registry registry;
  auto* stat = registry.stat("sim.center.utilization");
  stat->observe(0.25);
  stat->observe(0.75);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE sim_center_utilization summary"),
            std::string::npos);
  EXPECT_NE(text.find("sim_center_utilization_sum 1\n"), std::string::npos);
  EXPECT_NE(text.find("sim_center_utilization_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("sim_center_utilization_min 0.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("sim_center_utilization_max 0.75\n"),
            std::string::npos);
}

TEST(Prometheus, TimerHistogramIsCumulativeAndClosed) {
  Registry registry;
  auto* timer = registry.timer("serve.request.wall_time");
  // A spread of durations across several octaves.
  for (std::uint64_t ns = 100; ns <= 100000; ns = ns * 3 / 2) {
    timer->observe_ns(ns);
  }
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE serve_request_wall_time_seconds histogram"),
            std::string::npos);

  // Bucket counts must be non-decreasing in le order, close with +Inf,
  // and +Inf must equal _count.
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  bool saw_inf = false;
  for (const std::string& line : lines_of(text)) {
    const std::string bucket_prefix = "serve_request_wall_time_seconds_bucket";
    if (line.compare(0, bucket_prefix.size(), bucket_prefix) == 0) {
      const std::size_t space = line.rfind(' ');
      const std::uint64_t value = std::stoull(line.substr(space + 1));
      EXPECT_GE(value, previous) << line;
      previous = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = value;
      }
    }
    const std::string count_prefix = "serve_request_wall_time_seconds_count";
    if (line.compare(0, count_prefix.size(), count_prefix) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, timer->count());
  EXPECT_EQ(count_value, timer->count());
}

TEST(Prometheus, TimerBucketsScaleToSeconds) {
  Registry registry;
  registry.timer("t")->observe_ns(1000000000ull);  // exactly 1 s
  const std::string text = render_prometheus(registry);
  // The 1 s sample lands in a bucket whose upper edge is >= 1.0 s and
  // the _sum is 1 second.
  EXPECT_NE(text.find("t_seconds_sum 1\n"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count 1\n"), std::string::npos);
}

TEST(Prometheus, TimerHdrQuantileAgreesWithExposition) {
  Registry registry;
  auto* timer = registry.timer("q");
  for (std::uint64_t i = 1; i <= 1000; ++i) timer->observe_ns(i * 1000);
  // p50 within the HDR precision of the exact 500 us median.
  const std::uint64_t p50 = timer->quantile_ns(0.5);
  EXPECT_GE(p50, 500000u);
  EXPECT_LE(static_cast<double>(p50), 500000.0 * (1.0 + 1.0 / 32.0) + 1.0);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].hdr.quantile(0.5), p50);
}

}  // namespace
