#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hmcs/simcore/batch_means.hpp"
#include "hmcs/simcore/histogram.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/simcore/time_weighted.hpp"
#include "hmcs/simcore/welford.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::simcore;

// ---------------------------------------------------------------- Welford

TEST(Welford, MatchesClosedFormOnSmallSample) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance_population(), 4.0);
  EXPECT_NEAR(w.variance_sample(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, StableUnderLargeOffset) {
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  Welford w;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.variance_sample(), 1.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  Rng rng(5);
  Welford all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance_sample(), all.variance_sample(), 1e-9);
}

TEST(Welford, MergeWithEmptySides) {
  Welford a, b;
  a.add(3.0);
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty left
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Welford, ThrowsWithoutSamples) {
  Welford w;
  EXPECT_THROW(w.mean(), hmcs::ConfigError);
  w.add(1.0);
  EXPECT_THROW(w.variance_sample(), hmcs::ConfigError);
}

// ------------------------------------------------------------------ Tally

TEST(Tally, TracksMinMaxTotal) {
  Tally t;
  for (const double x : {3.0, -1.0, 7.0, 2.0}) t.add(x);
  EXPECT_DOUBLE_EQ(t.min(), -1.0);
  EXPECT_DOUBLE_EQ(t.max(), 7.0);
  EXPECT_DOUBLE_EQ(t.total(), 11.0);
  EXPECT_DOUBLE_EQ(t.mean(), 2.75);
}

TEST(Tally, ConfidenceIntervalBracketsTrueMean) {
  // 95% CI should contain the true mean in roughly 95% of replications.
  Rng rng(17);
  int covered = 0;
  constexpr int kReplications = 300;
  for (int r = 0; r < kReplications; ++r) {
    Tally t;
    for (int i = 0; i < 50; ++i) t.add(rng.exponential(10.0));
    const auto ci = t.confidence_interval(0.95);
    if (ci.lower <= 10.0 && 10.0 <= ci.upper) ++covered;
  }
  // Exponential skew costs a little coverage at n=50; accept 88%..99%.
  EXPECT_GE(covered, static_cast<int>(0.88 * kReplications));
  EXPECT_LE(covered, kReplications);
}

TEST(Tally, StudentTQuantiles) {
  EXPECT_NEAR(student_t_quantile(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 1000), 1.960, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.99, 5), 4.032, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.90, 30), 1.697, 1e-3);
  EXPECT_THROW(student_t_quantile(0.80, 10), hmcs::ConfigError);
  EXPECT_THROW(student_t_quantile(0.95, 0), hmcs::ConfigError);
}

TEST(Tally, MergeCombinesEverything) {
  Tally a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.total(), 13.0);
}

// ------------------------------------------------------------ BatchMeans

TEST(BatchMeans, GrandMeanMatchesSampleMean) {
  BatchMeans bm(10);
  double sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    bm.add(i);
    sum += i;
  }
  EXPECT_EQ(bm.num_complete_batches(), 10u);
  EXPECT_DOUBLE_EQ(bm.mean(), sum / 100.0);
}

TEST(BatchMeans, PartialBatchExcluded) {
  BatchMeans bm(10);
  for (int i = 0; i < 25; ++i) bm.add(1.0);
  EXPECT_EQ(bm.num_complete_batches(), 2u);
  EXPECT_EQ(bm.count(), 25u);
}

TEST(BatchMeans, WiderThanIidIntervalOnCorrelatedData) {
  // AR(1)-style positively correlated series: batch-means CI must be
  // wider than the naive i.i.d. CI.
  Rng rng(23);
  Tally iid;
  BatchMeans bm(100);
  double state = 0.0;
  for (int i = 0; i < 20000; ++i) {
    state = 0.95 * state + rng.uniform(-1.0, 1.0);
    iid.add(state);
    bm.add(state);
  }
  const double naive = iid.confidence_interval().half_width;
  const double batched = bm.confidence_interval().half_width;
  EXPECT_GT(batched, 2.0 * naive);
}

TEST(BatchMeans, Lag1AutocorrelationNearZeroForIid) {
  Rng rng(29);
  BatchMeans bm(50);
  for (int i = 0; i < 10000; ++i) bm.add(rng.uniform());
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.25);
}

TEST(BatchMeans, Lag1DegenerateCasesReturnZero) {
  // Fewer than 3 complete batches: undefined, documented return 0.0
  // (previously this threw / risked 0-variance NaN in release paths).
  BatchMeans empty(10);
  EXPECT_DOUBLE_EQ(empty.lag1_autocorrelation(), 0.0);
  BatchMeans two(2);
  for (int i = 0; i < 5; ++i) two.add(static_cast<double>(i));  // 2 batches
  ASSERT_EQ(two.num_complete_batches(), 2u);
  EXPECT_DOUBLE_EQ(two.lag1_autocorrelation(), 0.0);

  // A constant series has zero batch-mean variance: also 0.0, never NaN.
  BatchMeans constant(5);
  for (int i = 0; i < 50; ++i) constant.add(3.25);
  ASSERT_GE(constant.num_complete_batches(), 3u);
  const double r1 = constant.lag1_autocorrelation();
  EXPECT_FALSE(std::isnan(r1));
  EXPECT_DOUBLE_EQ(r1, 0.0);
}

TEST(BatchMeans, Validation) {
  EXPECT_THROW(BatchMeans(0), hmcs::ConfigError);
  BatchMeans bm(10);
  EXPECT_THROW(bm.mean(), hmcs::ConfigError);
  for (int i = 0; i < 10; ++i) bm.add(1.0);
  EXPECT_THROW(bm.confidence_interval(), hmcs::ConfigError);
}

// ------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lower(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(5), 6.0);
}

TEST(Histogram, QuantilesInterpolate) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), hmcs::ConfigError);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), hmcs::ConfigError);
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), hmcs::ConfigError);  // no samples yet
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), hmcs::ConfigError);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render();
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

// ---------------------------------------------------------- TimeWeighted

TEST(TimeWeighted, AveragesPiecewiseConstantSignal) {
  TimeWeighted tw(0.0, 0.0);
  tw.update(10.0, 2.0);  // value 0 for [0,10)
  tw.update(20.0, 4.0);  // value 2 for [10,20)
  // value 4 for [20,30): average = (0*10 + 2*10 + 4*10)/30 = 2.
  EXPECT_DOUBLE_EQ(tw.average(30.0), 2.0);
  EXPECT_DOUBLE_EQ(tw.current(), 4.0);
}

TEST(TimeWeighted, AddAdjustsRelative) {
  TimeWeighted tw(0.0, 1.0);
  tw.add(5.0, +2.0);
  tw.add(10.0, -1.0);
  EXPECT_DOUBLE_EQ(tw.current(), 2.0);
  // (1*5 + 3*5)/10 = 2.
  EXPECT_DOUBLE_EQ(tw.average(10.0), 2.0);
}

TEST(TimeWeighted, ResetWindowDropsHistory) {
  TimeWeighted tw(0.0, 10.0);
  tw.update(5.0, 0.0);
  tw.reset_window(5.0);
  tw.update(10.0, 2.0);
  // After reset: value 0 for [5,10), 2 for [10,15): average 1.
  EXPECT_DOUBLE_EQ(tw.average(15.0), 1.0);
}

TEST(TimeWeighted, RejectsTimeTravel) {
  TimeWeighted tw(10.0, 0.0);
  EXPECT_THROW(tw.update(5.0, 1.0), hmcs::ConfigError);
  EXPECT_THROW(tw.average(5.0), hmcs::ConfigError);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrentValue) {
  TimeWeighted tw(3.0, 7.5);
  EXPECT_DOUBLE_EQ(tw.average(3.0), 7.5);
}

}  // namespace
