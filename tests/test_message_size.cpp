#include <gtest/gtest.h>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/workload/message_size.hpp"

namespace {

using namespace hmcs::workload;
using hmcs::simcore::Rng;

TEST(FixedSize, AlwaysSameValue) {
  const FixedSize dist(1024.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample_bytes(rng), 1024.0);
  EXPECT_DOUBLE_EQ(dist.mean_bytes(), 1024.0);
  EXPECT_THROW(FixedSize(0.0), hmcs::ConfigError);
}

TEST(BimodalSize, SamplesOnlyTheTwoModes) {
  const BimodalSize dist(64.0, 4096.0, 0.25);
  Rng rng(2);
  int large = 0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const double bytes = dist.sample_bytes(rng);
    ASSERT_TRUE(bytes == 64.0 || bytes == 4096.0);
    if (bytes == 4096.0) ++large;
  }
  EXPECT_NEAR(static_cast<double>(large) / kSamples, 0.25, 0.01);
  EXPECT_DOUBLE_EQ(dist.mean_bytes(), 0.25 * 4096.0 + 0.75 * 64.0);
}

TEST(BimodalSize, Validation) {
  EXPECT_THROW(BimodalSize(0.0, 100.0, 0.5), hmcs::ConfigError);
  EXPECT_THROW(BimodalSize(200.0, 100.0, 0.5), hmcs::ConfigError);
  EXPECT_THROW(BimodalSize(10.0, 100.0, 1.5), hmcs::ConfigError);
}

TEST(ExponentialSize, MeanAndClampHold) {
  const ExponentialSize dist(1024.0, 32.0);
  Rng rng(3);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double bytes = dist.sample_bytes(rng);
    ASSERT_GE(bytes, 32.0);
    sum += bytes;
  }
  // The clamp adds a hair to the raw exponential mean.
  EXPECT_NEAR(sum / kSamples, 1024.0, 0.03 * 1024.0);
  EXPECT_DOUBLE_EQ(dist.mean_bytes(), 1024.0);
}

TEST(ExponentialSize, Validation) {
  EXPECT_THROW(ExponentialSize(0.0), hmcs::ConfigError);
  EXPECT_THROW(ExponentialSize(100.0, 200.0), hmcs::ConfigError);
}

TEST(SizeDistributions, NamesMentionParameters) {
  EXPECT_NE(FixedSize(512.0).name().find("512"), std::string::npos);
  EXPECT_NE(BimodalSize(64.0, 1024.0, 0.5).name().find("bimodal"),
            std::string::npos);
  EXPECT_NE(ExponentialSize(256.0).name().find("exponential"),
            std::string::npos);
}

}  // namespace
