// JSON writer and the analytic-type serialisation.

#include <gtest/gtest.h>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/serialize.hpp"
#include "hmcs/sim/serialize.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

TEST(Json, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::int64_t{1});
  json.key("b").value("two");
  json.key("c").value(true);
  json.key("d").null();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(Json, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("series").begin_array().value(1.5).value(2.5).end_array();
  json.key("inner").begin_object().key("x").value(std::uint64_t{7}).end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"series":[1.5,2.5],"inner":{"x":7}})");
}

TEST(Json, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("msg").value("line\n\"quoted\"\\\t\x01");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"msg\":\"line\\n\\\"quoted\\\"\\\\\\t\\u0001\"}");
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, DoubleRoundTripsPrecision) {
  JsonWriter json;
  json.value(0.1 + 0.2);
  EXPECT_EQ(std::stod(json.str()), 0.1 + 0.2);
}

TEST(Json, RootScalarsAllowed) {
  JsonWriter json;
  json.value("hello");
  EXPECT_EQ(json.str(), "\"hello\"");
}

TEST(Json, MisuseIsCaught) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), LogicError);  // value without key
  }
  {
    JsonWriter json;
    json.begin_object();
    json.key("a");
    EXPECT_THROW(json.key("b"), LogicError);  // two keys in a row
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), LogicError);  // mismatched close
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), LogicError);  // incomplete document
  }
  {
    JsonWriter json;
    json.value(1.0);
    EXPECT_THROW(json.value(2.0), LogicError);  // two roots
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("a"), LogicError);  // key at root
  }
}

TEST(Serialize, SystemConfigDocument) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 8,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  const std::string json = analytic::to_json(config);
  EXPECT_NE(json.find("\"clusters\":8"), std::string::npos);
  EXPECT_NE(json.find("\"Gigabit Ethernet\""), std::string::npos);
  EXPECT_NE(json.find("\"message_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("fat-tree"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Serialize, PredictionDocumentCarriesCenters) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 8,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  const std::string json =
      analytic::to_json(analytic::predict_latency(config));
  EXPECT_NE(json.find("\"mean_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"icn1\""), std::string::npos);
  EXPECT_NE(json.find("\"icn2\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

TEST(Serialize, SimResultDocument) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0, 32, 1e-4);
  hmcs::sim::SimOptions options;
  options.measured_messages = 1000;
  options.warmup_messages = 100;
  hmcs::sim::MultiClusterSim simulator(config, options);
  const std::string json = hmcs::sim::to_json(simulator.run());
  EXPECT_NE(json.find("\"messages_measured\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"p95_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"icn2\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Serialize, HeteroDocuments) {
  analytic::ClusterOfClustersConfig config;
  analytic::ClusterSpec spec;
  spec.nodes = 8;
  spec.icn1 = analytic::gigabit_ethernet();
  spec.ecn1 = analytic::fast_ethernet();
  spec.generation_rate_per_us = 1e-4;
  config.clusters = {spec, spec};
  config.icn2 = analytic::fast_ethernet();
  config.switch_params = {24, 10.0};
  config.message_bytes = 512.0;

  const std::string config_json = analytic::to_json(config);
  EXPECT_NE(config_json.find("\"clusters\":[{"), std::string::npos);

  const std::string prediction_json =
      analytic::to_json(analytic::predict_cluster_of_clusters(config));
  EXPECT_NE(prediction_json.find("\"per_cluster_latency_us\":["),
            std::string::npos);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, ObjectKeepsDocumentOrder) {
  const JsonValue doc = parse_json(R"({"b":1,"a":[2,3],"c":{"d":null}})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members.size(), 3u);
  EXPECT_EQ(doc.members[0].first, "b");
  EXPECT_EQ(doc.members[1].first, "a");
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_number(), 3.0);
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), ConfigError);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue doc = parse_json(R"("a\n\t\"\\\/Aé")");
  EXPECT_EQ(doc.as_string(), "a\n\t\"\\/A\xC3\xA9");
  // \u escapes decode to UTF-8.
  EXPECT_EQ(parse_json("\"\\u00e9A\"").as_string(), "\xC3\xA9\x41");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter json;
  json.begin_object();
  json.key("series").begin_array().value(1.5).value(2.5).end_array();
  json.key("name").value("line\n\"quoted\"");
  json.key("flag").value(true);
  json.end_object();
  const JsonValue doc = parse_json(json.str());
  EXPECT_DOUBLE_EQ(doc.at("series").at(0).as_number(), 1.5);
  EXPECT_EQ(doc.at("name").as_string(), "line\n\"quoted\"");
  EXPECT_TRUE(doc.at("flag").as_bool());
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), ConfigError);
  EXPECT_THROW(parse_json("{"), ConfigError);
  EXPECT_THROW(parse_json("[1,]"), ConfigError);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), ConfigError);
  EXPECT_THROW(parse_json("{\"a\":1,\"a\":2}"), ConfigError);  // dup key
  EXPECT_THROW(parse_json("\"unterminated"), ConfigError);
  EXPECT_THROW(parse_json("01"), ConfigError);
  EXPECT_THROW(parse_json("nul"), ConfigError);
}

TEST(JsonParse, RejectsOutOfRangeNumbers) {
  // strtod overflow must be a positioned parse error, not a silent inf
  // poisoning configs and journal resume.
  EXPECT_THROW(parse_json("1e999"), ConfigError);
  EXPECT_THROW(parse_json("-1e999"), ConfigError);
  EXPECT_THROW(parse_json("{\"rate\": 1e400}"), ConfigError);
  EXPECT_THROW(parse_json("[1.0, 2.0, 1e999]"), ConfigError);
  try {
    parse_json("{\"rate\": 1e400}");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("out of range"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("offset 9"), std::string::npos);
  }
}

TEST(JsonParse, UnderflowIsNotAnError) {
  // Subnormal/zero underflow is a faithful nearest representation; only
  // overflow is rejected.
  EXPECT_DOUBLE_EQ(parse_json("1e-999").as_number(), 0.0);
  EXPECT_NEAR(parse_json("4.9e-324").as_number(), 4.9e-324, 1e-323);
  EXPECT_DOUBLE_EQ(parse_json("1.7976931348623157e308").as_number(),
                   1.7976931348623157e308);
}

TEST(JsonParse, TypeMismatchAccessorsThrow) {
  const JsonValue doc = parse_json("[1]");
  EXPECT_THROW(doc.as_number(), ConfigError);
  EXPECT_THROW(doc.at("key"), ConfigError);
  EXPECT_THROW(doc.at(5), ConfigError);
}

TEST(JsonParse, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += '[';
  for (int i = 0; i < 400; ++i) deep += ']';
  EXPECT_THROW(parse_json(deep), ConfigError);
}

}  // namespace
