// WorkloadScenario (docs/WORKLOADS.md): MMPP rate resolution and exact
// interarrival SCV, the failure/repair two-moment fold, scenario ->
// solver-option mapping, JSON round-trips, and the simcore samplers
// (variate_cv2, poisson, Mmpp2) pinned against their analytic moments.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/workload.hpp"
#include "hmcs/simcore/distributions.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs::analytic;
namespace simcore = hmcs::simcore;

// ------------------------------------------------------ MMPP algebra

TEST(Mmpp, ResolvedRatesPreserveTheMean) {
  MmppArrivals mmpp;
  mmpp.burst_ratio = 5.0;
  mmpp.burst_fraction = 0.2;
  mmpp.burst_dwell_us = 500.0;
  const double rate = 0.003;
  const MmppRates rates = resolve_mmpp(mmpp, rate);
  // Time-stationary mean (1-f) r0 + f r1 must equal the offered rate.
  const double f = mmpp.burst_fraction;
  EXPECT_NEAR((1.0 - f) * rates.base_rate + f * rates.burst_rate, rate, 1e-15);
  EXPECT_NEAR(rates.burst_rate, mmpp.burst_ratio * rates.base_rate, 1e-15);
  // Detailed balance: pi0 s0 = pi1 s1.
  EXPECT_NEAR((1.0 - f) * rates.leave_base, f * rates.leave_burst, 1e-15);
  EXPECT_NEAR(rates.leave_burst, 1.0 / mmpp.burst_dwell_us, 1e-15);
}

TEST(Mmpp, ScvDegeneratesToPoisson) {
  MmppArrivals flat;
  flat.burst_ratio = 1.0;  // both states share one rate: plain Poisson
  EXPECT_DOUBLE_EQ(mmpp_arrival_scv(flat, 0.002), 1.0);
  MmppArrivals bursty;
  EXPECT_DOUBLE_EQ(mmpp_arrival_scv(bursty, 0.0), 1.0);  // no arrivals
}

TEST(Mmpp, ScvExceedsPoissonAndGrowsWithRate) {
  MmppArrivals mmpp;  // defaults: ratio 4, fraction 0.1, dwell 1000us
  double previous = 1.0;
  for (double rate : {1e-4, 1e-3, 1e-2, 1e-1}) {
    const double scv = mmpp_arrival_scv(mmpp, rate);
    EXPECT_GT(scv, previous);  // burstier per-burst counts at higher rate
    previous = scv;
  }
  // Vanishing rate: at most one arrival per burst, Poisson-like.
  EXPECT_NEAR(mmpp_arrival_scv(mmpp, 1e-9), 1.0, 1e-4);
}

TEST(Mmpp, ScvMatchesSimulatedStream) {
  MmppArrivals mmpp;
  mmpp.burst_ratio = 6.0;
  mmpp.burst_fraction = 0.15;
  mmpp.burst_dwell_us = 200.0;
  const double rate = 0.05;
  const MmppRates rates = resolve_mmpp(mmpp, rate);
  simcore::Mmpp2 source(rates.base_rate, rates.burst_rate, rates.leave_base,
                        rates.leave_burst);
  simcore::Rng rng(20260807);
  source.set_bursty(rng.bernoulli(mmpp.burst_fraction));
  const std::size_t draws = 400000;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    const double x = source.next_interarrival_us(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / static_cast<double>(draws);
  const double second = sum_sq / static_cast<double>(draws);
  const double scv = second / (mean * mean) - 1.0;
  EXPECT_NEAR(mean, 1.0 / rate, 0.02 * (1.0 / rate));
  const double expected = mmpp_arrival_scv(mmpp, rate);
  EXPECT_GT(expected, 1.5);  // the scenario is genuinely bursty
  EXPECT_NEAR(scv, expected, 0.05 * expected);
}

TEST(Mmpp, Validation) {
  MmppArrivals bad;
  bad.burst_ratio = 0.5;
  EXPECT_THROW(bad.validate(), hmcs::ConfigError);
  bad = MmppArrivals{};
  bad.burst_fraction = 1.0;
  EXPECT_THROW(bad.validate(), hmcs::ConfigError);
  bad = MmppArrivals{};
  bad.burst_dwell_us = 0.0;
  EXPECT_THROW(bad.validate(), hmcs::ConfigError);
  EXPECT_THROW(resolve_mmpp(MmppArrivals{}, -1.0), hmcs::ConfigError);
}

// ------------------------------------------- failure/repair fold

TEST(Failure, EffectiveServiceIdentityWhenDisabled) {
  FixedPointOptions options;  // mtbf = mttr = 0: disabled
  const EffectiveService same = effective_service(2.0, 0.5, options);
  EXPECT_EQ(same.mu, 2.0);
  EXPECT_EQ(same.cs2, 0.5);
  options.failure_mtbf_us = 1e6;
  options.failure_mttr_us = 0.0;  // instantaneous repair: still identity
  const EffectiveService still = effective_service(2.0, 0.5, options);
  EXPECT_EQ(still.mu, 2.0);
  EXPECT_EQ(still.cs2, 0.5);
}

TEST(Failure, EffectiveServiceStretchesByAvailability) {
  FixedPointOptions options;
  options.failure_mtbf_us = 9000.0;
  options.failure_mttr_us = 1000.0;  // A = 0.9
  const double mu = 0.01;
  const EffectiveService eff = effective_service(mu, 1.0, options);
  EXPECT_NEAR(eff.mu, mu * 0.9, 1e-15);
  // Completion-time SCV inflates: cs2 + 2 A^2 mttr^2 mu / mtbf.
  const double extra = 2.0 * 0.81 * 1000.0 * 1000.0 * mu / 9000.0;
  EXPECT_NEAR(eff.cs2, 1.0 + extra, 1e-12);
  EXPECT_GT(eff.cs2, 1.0);
}

TEST(Failure, AvailabilityHelperAndValidation) {
  FailureRepair repair;
  repair.mtbf_us = 3000.0;
  repair.mttr_us = 1000.0;
  EXPECT_NEAR(repair.availability(), 0.75, 1e-15);
  repair.mtbf_us = 0.0;
  EXPECT_THROW(repair.validate(), hmcs::ConfigError);
  repair = FailureRepair{};
  repair.mttr_us = -1.0;
  EXPECT_THROW(repair.validate(), hmcs::ConfigError);
}

// ---------------------------------------------- scenario plumbing

TEST(Scenario, DefaultsAreThePaperModel) {
  WorkloadScenario scenario;
  EXPECT_TRUE(scenario.is_default());
  scenario.validate();
  scenario.service_cv2 = 2.0;
  EXPECT_FALSE(scenario.is_default());
  scenario = WorkloadScenario{};
  scenario.mmpp = MmppArrivals{};
  EXPECT_FALSE(scenario.is_default());
  scenario = WorkloadScenario{};
  scenario.failure = FailureRepair{};
  EXPECT_FALSE(scenario.is_default());
}

TEST(Scenario, ArrivalCa2AndMmppAreMutuallyExclusive) {
  WorkloadScenario scenario;
  scenario.arrival_ca2 = 2.0;
  scenario.mmpp = MmppArrivals{};
  EXPECT_THROW(scenario.validate(), hmcs::ConfigError);
}

TEST(Scenario, WithScenarioOverridesOnlyNonDefaults) {
  FixedPointOptions options;
  options.service_cv2 = 0.25;  // caller-tuned; default scenario keeps it
  const FixedPointOptions unchanged =
      with_scenario(options, WorkloadScenario{}, 0.002);
  EXPECT_EQ(unchanged.service_cv2, 0.25);
  EXPECT_EQ(unchanged.arrival_ca2, 1.0);
  EXPECT_EQ(unchanged.failure_mtbf_us, 0.0);

  WorkloadScenario scenario;
  scenario.service_cv2 = 4.0;
  scenario.arrival_ca2 = 2.0;
  scenario.failure = FailureRepair{5e5, 2e3};
  const FixedPointOptions mapped = with_scenario(options, scenario, 0.002);
  EXPECT_EQ(mapped.service_cv2, 4.0);
  EXPECT_EQ(mapped.arrival_ca2, 2.0);
  EXPECT_EQ(mapped.failure_mtbf_us, 5e5);
  EXPECT_EQ(mapped.failure_mttr_us, 2e3);
}

TEST(Scenario, WithScenarioResolvesMmppAtTheOfferedRate) {
  FixedPointOptions options;
  WorkloadScenario scenario;
  scenario.mmpp = MmppArrivals{};
  const double rate = 0.01;
  const FixedPointOptions mapped = with_scenario(options, scenario, rate);
  EXPECT_DOUBLE_EQ(mapped.arrival_ca2, mmpp_arrival_scv(*scenario.mmpp, rate));
  EXPECT_GT(mapped.arrival_ca2, 1.0);
}

// --------------------------------------------------- JSON surface

TEST(WorkloadJson, RoundTripsNonDefaultScenario) {
  WorkloadScenario scenario;
  scenario.service_cv2 = 4.0;
  scenario.mmpp = MmppArrivals{3.0, 0.25, 750.0};
  scenario.failure = FailureRepair{2e6, 5e3};
  hmcs::JsonWriter json;
  write_json(json, scenario);
  const hmcs::JsonValue doc = hmcs::parse_json(json.str());
  EXPECT_EQ(workload_from_json(doc), scenario);
}

TEST(WorkloadJson, ExplicitDefaultsRenderLikeOmittedOnes) {
  // The canonical writer collapses spelled-out defaults, so a request
  // carrying {"service_cv2": 1.0} keys identically to one without.
  const WorkloadScenario spelled =
      workload_from_json(hmcs::parse_json("{\"service_cv2\": 1.0}"));
  EXPECT_TRUE(spelled.is_default());
  EXPECT_EQ(spelled, WorkloadScenario{});
}

TEST(WorkloadJson, RejectsUnknownAndConflictingKeys) {
  EXPECT_THROW(workload_from_json(hmcs::parse_json("{\"cv2\": 2.0}")),
               hmcs::ConfigError);
  EXPECT_THROW(
      workload_from_json(hmcs::parse_json(
          "{\"arrival_ca2\": 2.0, \"mmpp\": {\"burst_ratio\": 2.0}}")),
      hmcs::ConfigError);
  EXPECT_THROW(
      workload_from_json(hmcs::parse_json("{\"failure\": {\"mtbf_us\": 1e6}}")),
      hmcs::ConfigError);  // mttr_us is required alongside mtbf_us
}

// ------------------------------------------------ simcore samplers

double sample_mean_and_scv(double mean, double cv2, double* out_scv) {
  simcore::Rng rng(77);
  const std::size_t draws = 300000;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    const double x = simcore::variate_cv2(rng, mean, cv2);
    EXPECT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / static_cast<double>(draws);
  const double var = sum_sq / static_cast<double>(draws) - m * m;
  *out_scv = var / (m * m);
  return m;
}

TEST(VariateCv2, MatchesTargetMomentsAcrossRegimes) {
  for (double cv2 : {0.0, 0.3, 0.5, 1.0, 2.0, 4.0}) {
    double scv = 0.0;
    const double mean = sample_mean_and_scv(12.5, cv2, &scv);
    EXPECT_NEAR(mean, 12.5, 0.02 * 12.5) << "cv2=" << cv2;
    EXPECT_NEAR(scv, cv2, 0.03 * (cv2 + 0.25)) << "cv2=" << cv2;
  }
}

TEST(VariateCv2, ExponentialPathIsBitIdenticalToRawDraw) {
  // cv^2 = 1 must make exactly one rng.exponential(mean) call — the
  // default-scenario bit-identity contract for every simulator.
  simcore::Rng a(123), b(123);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(simcore::variate_cv2(a, 3.5, 1.0), b.exponential(3.5));
  }
}

TEST(VariateCv2, DeterministicDrawsNothing) {
  simcore::Rng a(9), b(9);
  EXPECT_EQ(simcore::variate_cv2(a, 7.0, 0.0), 7.0);
  // No state consumed: the next exponential matches a fresh twin.
  EXPECT_EQ(a.exponential(1.0), b.exponential(1.0));
}

TEST(PoissonSampler, MatchesMeanAndHandlesZero) {
  simcore::Rng rng(31337);
  EXPECT_EQ(simcore::poisson(rng, 0.0), 0u);
  const double mean = 3.25;
  const std::size_t draws = 200000;
  double sum = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    sum += static_cast<double>(simcore::poisson(rng, mean));
  }
  EXPECT_NEAR(sum / static_cast<double>(draws), mean, 0.02 * mean);
}

}  // namespace
