#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "hmcs/simcore/event_queue.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::simcore::EventId;
using hmcs::simcore::EventQueue;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (auto event = q.pop_next()) event->action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (auto event = q.pop_next()) event->action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  q.push(4.0, [] {});
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*q.peek_time(), 4.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId keep = q.push(1.0, [&] { ++fired; });
  const EventId drop = q.push(2.0, [&] { fired += 100; });
  (void)keep;
  EXPECT_TRUE(q.cancel(drop));
  EXPECT_EQ(q.size(), 1u);
  while (auto event = q.pop_next()) event->action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotentAndReportsMisses) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop_next().has_value());
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  int fired = 0;
  const EventId head = q.push(1.0, [&] { fired = -1; });
  q.push(2.0, [&] { fired = 2; });
  q.cancel(head);
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*q.peek_time(), 2.0);
  auto event = q.pop_next();
  ASSERT_TRUE(event.has_value());
  event->action();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.push(0.0, hmcs::simcore::EventAction{}), hmcs::ConfigError);
}

TEST(EventQueue, TracksCounts) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.total_pushed(), 2u);
  EXPECT_EQ(q.size(), 2u);
  q.pop_next();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(EventQueue, DifferentialFuzzAgainstReferenceModel) {
  // Random interleaving of push/cancel/pop, mirrored into a simple
  // reference model ordered by (time, push sequence) — the engine's
  // documented total order. Ids are generation-tagged slot references,
  // so the reference tracks the push sequence separately and checks the
  // popped id against the one recorded for that sequence number. Times
  // are drawn from a small grid so equal-time ties actually occur and
  // the FIFO tie-break is exercised.
  hmcs::simcore::Rng rng(0xfeedULL);
  EventQueue queue;
  struct Entry {
    EventId id;
    bool alive;
  };
  std::map<std::pair<double, std::uint64_t>, Entry> reference;
  std::vector<std::pair<double, std::uint64_t>> live_keys;
  std::uint64_t sequence = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t action = rng.uniform_below(10);
    if (action < 5) {  // push
      const double t = static_cast<double>(rng.uniform_below(256));
      const EventId id = queue.push(t, [] {});
      const auto key = std::make_pair(t, sequence++);
      reference.emplace(key, Entry{id, true});
      live_keys.push_back(key);
    } else if (action < 7 && !live_keys.empty()) {  // cancel random id
      const std::size_t pick = rng.uniform_below(live_keys.size());
      Entry& entry = reference.at(live_keys[pick]);
      const bool queue_says = queue.cancel(entry.id);
      ASSERT_EQ(queue_says, entry.alive) << "step " << step;
      entry.alive = false;
      live_keys.erase(live_keys.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {  // pop
      auto event = queue.pop_next();
      // Reference pop: smallest (time, sequence) still alive.
      auto it = reference.begin();
      while (it != reference.end() && !it->second.alive) {
        it = reference.erase(it);
      }
      if (!event.has_value()) {
        ASSERT_TRUE(it == reference.end()) << "step " << step;
        continue;
      }
      ASSERT_TRUE(it != reference.end()) << "step " << step;
      ASSERT_EQ(event->time, it->first.first) << "step " << step;
      ASSERT_EQ(event->id, it->second.id) << "step " << step;
      live_keys.erase(
          std::remove(live_keys.begin(), live_keys.end(), it->first),
          live_keys.end());
      reference.erase(it);
    }
  }
  std::size_t reference_alive = 0;
  for (const auto& [key, entry] : reference) {
    reference_alive += entry.alive ? 1u : 0u;
  }
  EXPECT_EQ(queue.size(), reference_alive);
}

TEST(EventQueue, StaleIdAfterPopIsRejected) {
  // Generation tagging: once an event has fired, its id is dead forever —
  // even after the slot is recycled for a new event.
  EventQueue q;
  const EventId first = q.push(1.0, [] {});
  auto event = q.pop_next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->id, first);
  EXPECT_FALSE(q.cancel(first)) << "id of an executed event must be dead";

  int fired = 0;
  const EventId second = q.push(2.0, [&] { ++fired; });
  EXPECT_NE(first, second) << "recycled slot must carry a new generation";
  EXPECT_FALSE(q.cancel(first)) << "stale id must not hit the new occupant";
  EXPECT_EQ(q.size(), 1u);
  auto next = q.pop_next();
  ASSERT_TRUE(next.has_value());
  next->action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SameTimeFifoSurvivesChurn) {
  // FIFO among equal times must hold while pops, cancels, and slot reuse
  // shuffle the underlying storage.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> cancellable;
  for (int round = 0; round < 200; ++round) {
    // A cohort of same-time events, interleaved with decoys that are
    // cancelled before the cohort fires.
    const double t = 1000.0 + static_cast<double>(round);
    for (int i = 0; i < 5; ++i) {
      const int tag = round * 5 + i;
      q.push(t, [&fired, tag] { fired.push_back(tag); });
      cancellable.push_back(q.push(t, [&fired] { fired.push_back(-1); }));
    }
    // Cancel this round's decoys and pop a few earlier events so slots
    // recycle mid-sequence.
    for (std::size_t i = cancellable.size() - 5; i < cancellable.size(); ++i) {
      ASSERT_TRUE(q.cancel(cancellable[i]));
    }
    if (round % 3 == 0) {
      if (auto event = q.pop_next()) event->action();
    }
  }
  while (auto event = q.pop_next()) event->action();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(i)) << "at position " << i;
  }
}

TEST(EventQueue, SlotPoolIsReusedAcrossMillionsOfEvents) {
  // 2^20 events through a tiny pending window: the slot pool must stay
  // at the high-water mark of *simultaneous* events, proving push/pop
  // recycles slots instead of growing storage with total events.
  EventQueue q;
  hmcs::simcore::Rng rng(99);
  for (int i = 0; i < 8; ++i) q.push(rng.uniform(0.0, 1.0), [] {});
  double now = 0.0;
  constexpr std::uint64_t kEvents = 1u << 20;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    auto event = q.pop_next();
    ASSERT_TRUE(event.has_value());
    now = event->time;
    q.push(now + rng.uniform(0.0, 1.0), [] {});
  }
  EXPECT_EQ(q.total_pushed(), kEvents + 8);
  EXPECT_EQ(q.size(), 8u);
  EXPECT_LE(q.slot_capacity(), 64u);
}

TEST(EventQueue, MoveTransfersPendingEvents) {
  EventQueue source;
  int fired = 0;
  source.push(2.0, [&] { fired += 2; });
  const EventId cancel_me = source.push(3.0, [&] { fired += 100; });
  source.push(1.0, [&] { fired += 1; });

  EventQueue moved(std::move(source));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_TRUE(moved.cancel(cancel_me)) << "ids must survive the move";

  EventQueue assigned;
  assigned.push(9.0, [&] { fired += 1000; });
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 2u);
  while (auto event = assigned.pop_next()) event->action();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StressInterleavedPushPopCancel) {
  EventQueue q;
  std::vector<double> popped;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      const double t = static_cast<double>((round * 7 + i * 13) % 101);
      ids.push_back(q.push(t, [] {}));
    }
    // Cancel every third id pushed this round.
    for (std::size_t i = ids.size() - 20; i < ids.size(); i += 3) {
      q.cancel(ids[i]);
    }
    for (int i = 0; i < 10; ++i) {
      if (auto event = q.pop_next()) popped.push_back(event->time);
    }
  }
  while (auto event = q.pop_next()) popped.push_back(event->time);
  EXPECT_TRUE(q.empty());
  // Within the drain phase times are non-decreasing.
  // (Interleaved pops may legitimately see later-pushed earlier times.)
  SUCCEED();
}

}  // namespace
