#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "hmcs/simcore/event_queue.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::simcore::EventId;
using hmcs::simcore::EventQueue;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (auto event = q.pop_next()) event->action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (auto event = q.pop_next()) event->action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  q.push(4.0, [] {});
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*q.peek_time(), 4.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId keep = q.push(1.0, [&] { ++fired; });
  const EventId drop = q.push(2.0, [&] { fired += 100; });
  (void)keep;
  EXPECT_TRUE(q.cancel(drop));
  EXPECT_EQ(q.size(), 1u);
  while (auto event = q.pop_next()) event->action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotentAndReportsMisses) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop_next().has_value());
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  int fired = 0;
  const EventId head = q.push(1.0, [&] { fired = -1; });
  q.push(2.0, [&] { fired = 2; });
  q.cancel(head);
  ASSERT_TRUE(q.peek_time().has_value());
  EXPECT_DOUBLE_EQ(*q.peek_time(), 2.0);
  auto event = q.pop_next();
  ASSERT_TRUE(event.has_value());
  event->action();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.push(0.0, hmcs::simcore::EventAction{}), hmcs::ConfigError);
}

TEST(EventQueue, TracksCounts) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.total_pushed(), 2u);
  EXPECT_EQ(q.size(), 2u);
  q.pop_next();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(EventQueue, DifferentialFuzzAgainstReferenceModel) {
  // Random interleaving of push/cancel/pop, mirrored into a simple
  // reference model (sorted multiset of (time, id)); both must agree on
  // every pop and on the final size.
  hmcs::simcore::Rng rng(0xfeedULL);
  EventQueue queue;
  std::multimap<std::pair<double, EventId>, bool> reference;  // -> alive
  std::vector<EventId> live_ids;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t action = rng.uniform_below(10);
    if (action < 5) {  // push
      const double t = rng.uniform(0.0, 1000.0);
      const EventId id = queue.push(t, [] {});
      reference.emplace(std::make_pair(t, id), true);
      live_ids.push_back(id);
    } else if (action < 7 && !live_ids.empty()) {  // cancel random id
      const std::size_t pick = rng.uniform_below(live_ids.size());
      const EventId id = live_ids[pick];
      const bool queue_says = queue.cancel(id);
      bool reference_says = false;
      for (auto& [key, alive] : reference) {
        if (key.second == id && alive) {
          alive = false;
          reference_says = true;
          break;
        }
      }
      ASSERT_EQ(queue_says, reference_says) << "step " << step;
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {  // pop
      auto event = queue.pop_next();
      // Reference pop: smallest (time, id) still alive.
      auto it = reference.begin();
      while (it != reference.end() && !it->second) it = reference.erase(it);
      if (!event.has_value()) {
        ASSERT_TRUE(it == reference.end()) << "step " << step;
        continue;
      }
      ASSERT_TRUE(it != reference.end()) << "step " << step;
      ASSERT_DOUBLE_EQ(event->time, it->first.first) << "step " << step;
      ASSERT_EQ(event->id, it->first.second) << "step " << step;
      reference.erase(it);
      live_ids.erase(std::remove(live_ids.begin(), live_ids.end(), event->id),
                     live_ids.end());
    }
  }
  std::size_t reference_alive = 0;
  for (const auto& [key, alive] : reference) reference_alive += alive;
  EXPECT_EQ(queue.size(), reference_alive);
}

TEST(EventQueue, StressInterleavedPushPopCancel) {
  EventQueue q;
  std::vector<double> popped;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      const double t = static_cast<double>((round * 7 + i * 13) % 101);
      ids.push_back(q.push(t, [] {}));
    }
    // Cancel every third id pushed this round.
    for (std::size_t i = ids.size() - 20; i < ids.size(); i += 3) {
      q.cancel(ids[i]);
    }
    for (int i = 0; i < 10; ++i) {
      if (auto event = q.pop_next()) popped.push_back(event->time);
    }
  }
  while (auto event = q.pop_next()) popped.push_back(event->time);
  EXPECT_TRUE(q.empty());
  // Within the drain phase times are non-decreasing.
  // (Interleaved pops may legitimately see later-pushed earlier times.)
  SUCCEED();
}

}  // namespace
