// eq. (8): P = (C-1) N0 / (C N0 - 1).

#include <gtest/gtest.h>

#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::analytic::inter_cluster_probability;

TEST(RoutingProbability, SingleClusterIsZero) {
  EXPECT_DOUBLE_EQ(inter_cluster_probability(1, 256), 0.0);
  EXPECT_DOUBLE_EQ(inter_cluster_probability(1, 1), 0.0);
}

TEST(RoutingProbability, FullyDispersedIsOne) {
  // N0 = 1: every destination is remote.
  EXPECT_DOUBLE_EQ(inter_cluster_probability(256, 1), 1.0);
  EXPECT_DOUBLE_EQ(inter_cluster_probability(2, 1), 1.0);
}

TEST(RoutingProbability, PaperSweepValues) {
  // N = 256 split across C clusters: P = (C-1)*N0/(255).
  EXPECT_NEAR(inter_cluster_probability(2, 128), 128.0 / 255.0, 1e-12);
  EXPECT_NEAR(inter_cluster_probability(4, 64), 192.0 / 255.0, 1e-12);
  EXPECT_NEAR(inter_cluster_probability(16, 16), 240.0 / 255.0, 1e-12);
  EXPECT_NEAR(inter_cluster_probability(128, 2), 254.0 / 255.0, 1e-12);
}

TEST(RoutingProbability, MatchesUniformDestinationInterpretation) {
  // P should equal (nodes outside my cluster)/(all nodes but me).
  for (std::uint32_t c : {2u, 3u, 5u, 7u}) {
    for (std::uint32_t n0 : {1u, 2u, 10u, 33u}) {
      const double total = static_cast<double>(c) * n0;
      const double expected = (total - n0) / (total - 1.0);
      EXPECT_NEAR(inter_cluster_probability(c, n0), expected, 1e-12);
    }
  }
}

TEST(RoutingProbability, AlwaysInUnitInterval) {
  for (std::uint32_t c = 1; c <= 64; c *= 2) {
    for (std::uint32_t n0 = 1; n0 <= 64; n0 *= 2) {
      const double p = inter_cluster_probability(c, n0);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(RoutingProbability, MonotoneInClusterCountAtFixedTotal) {
  // Splitting 256 nodes more finely makes remote traffic more likely.
  double previous = -1.0;
  for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const double p = inter_cluster_probability(c, 256 / c);
    EXPECT_GT(p, previous);
    previous = p;
  }
}

TEST(RoutingProbability, RejectsZeroes) {
  EXPECT_THROW(inter_cluster_probability(0, 4), hmcs::ConfigError);
  EXPECT_THROW(inter_cluster_probability(4, 0), hmcs::ConfigError);
}

}  // namespace
