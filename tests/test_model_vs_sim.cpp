// The paper's validation claim, as a test: across the experiment grid
// (both heterogeneity cases, both architectures, several cluster counts
// and message sizes), the analytical prediction tracks the simulation.
//
// Two analytical variants are checked: the exact-MVA model must agree
// tightly everywhere (the simulator is the closed network MVA solves);
// the paper's eq. (6)-(7) approximation is held to a looser bound and is
// allowed its known weak spot (partial saturation at small C, where the
// open-network approximation misallocates queueing between centres —
// EXPERIMENTS.md quantifies this).

#include <gtest/gtest.h>

#include <string>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/workload.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs;
using analytic::HeterogeneityCase;
using analytic::NetworkArchitecture;

struct GridPoint {
  HeterogeneityCase hetero;
  NetworkArchitecture architecture;
  std::uint32_t clusters;
  double message_bytes;
};

class ModelVsSim : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelVsSim, MvaTracksSimulation) {
  const GridPoint& point = GetParam();
  const analytic::SystemConfig config =
      analytic::paper_scenario(point.hetero, point.clusters,
                               point.architecture, point.message_bytes);

  analytic::ModelOptions mva;
  mva.fixed_point.method = analytic::SourceThrottling::kExactMva;
  const auto closed = analytic::predict_latency(config, mva);
  const auto open = analytic::predict_latency(config);

  sim::SimOptions options;
  options.measured_messages = 8000;
  options.warmup_messages = 2000;
  options.seed = 20240615 + point.clusters;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  // Exact MVA: tight agreement (simulation noise + the small deviation
  // from product form introduced by the deterministic routing split).
  EXPECT_LT(relative_error(closed.mean_latency_us, result.mean_latency_us),
            0.10)
      << "MVA " << closed.mean_latency_us << " vs sim "
      << result.mean_latency_us;

  // Paper's approximation: correct order and shape everywhere; the known
  // partial-saturation weak spot is bounded rather than exact.
  EXPECT_LT(relative_error(open.mean_latency_us, result.mean_latency_us), 0.55)
      << "open model " << open.mean_latency_us << " vs sim "
      << result.mean_latency_us;

  // Throughput view: MVA's effective rate matches the measured one.
  EXPECT_LT(relative_error(closed.lambda_effective,
                           result.effective_rate_per_us),
            0.10);
}

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& param_info) {
  const GridPoint& p = param_info.param;
  std::string name = p.hetero == HeterogeneityCase::kCase1 ? "case1" : "case2";
  name += p.architecture == NetworkArchitecture::kNonBlocking ? "_fattree"
                                                              : "_chain";
  name += "_C" + std::to_string(p.clusters);
  name += "_M" + std::to_string(static_cast<int>(p.message_bytes));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ModelVsSim,
    ::testing::Values(
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 1, 1024.0},
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 2, 1024.0},
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 16, 512.0},
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 256, 1024.0},
        GridPoint{HeterogeneityCase::kCase2, NetworkArchitecture::kNonBlocking, 4, 512.0},
        GridPoint{HeterogeneityCase::kCase2, NetworkArchitecture::kNonBlocking, 64, 1024.0},
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kBlocking, 4, 512.0},
        GridPoint{HeterogeneityCase::kCase1, NetworkArchitecture::kBlocking, 32, 1024.0},
        GridPoint{HeterogeneityCase::kCase2, NetworkArchitecture::kBlocking, 8, 1024.0},
        GridPoint{HeterogeneityCase::kCase2, NetworkArchitecture::kBlocking, 128, 512.0}),
    grid_name);

TEST(ModelVsSim, OpenLoopSimMatchesUncorrectedJacksonModel) {
  // Assumption 4 removed on both sides: open Poisson sources in the
  // simulator against SourceThrottling::kNone in the model. With every
  // centre stable the open Jackson network is exact, so the agreement
  // here isolates eq. (7) as the only approximation the paper adds.
  const analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking,
      1024.0, 32, 1e-4);
  analytic::ModelOptions none;
  none.fixed_point.method = analytic::SourceThrottling::kNone;
  const auto open_model = analytic::predict_latency(config, none);

  sim::SimOptions options;
  options.measured_messages = 30000;
  options.warmup_messages = 3000;
  options.seed = 1234;
  options.closed_loop = false;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  EXPECT_LT(relative_error(open_model.mean_latency_us,
                           result.mean_latency_us),
            0.05)
      << "open model " << open_model.mean_latency_us << " vs open-loop sim "
      << result.mean_latency_us;
  // Open-loop throughput equals the offered rate (nothing throttles).
  EXPECT_LT(relative_error(result.effective_rate_per_us,
                           config.generation_rate_per_us),
            0.05);
}

TEST(ModelVsSim, DeterministicServiceMatchesMD1Model) {
  // cv^2 = 0 in the open model vs the simulator's deterministic service,
  // at moderate load where the PK term matters but nothing saturates.
  const analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0,
      256, 25e-6);  // 25 msg/s
  analytic::ModelOptions md1;
  md1.fixed_point.service_cv2 = 0.0;
  const auto deterministic_model = analytic::predict_latency(config, md1);
  const auto exponential_model = analytic::predict_latency(config);

  sim::SimOptions options;
  options.measured_messages = 20000;
  options.warmup_messages = 4000;
  options.seed = 314;
  options.service_distribution = sim::ServiceDistribution::kDeterministic;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  EXPECT_LT(relative_error(deterministic_model.mean_latency_us,
                           result.mean_latency_us),
            0.06)
      << "M/D/1 model " << deterministic_model.mean_latency_us << " vs sim "
      << result.mean_latency_us;
  // And the M/D/1 model must beat the exponential one on this workload.
  EXPECT_LT(relative_error(deterministic_model.mean_latency_us,
                           result.mean_latency_us),
            relative_error(exponential_model.mean_latency_us,
                           result.mean_latency_us));
}

TEST(ModelVsSim, LowLoadLimitIsExact) {
  // At the literal Table 2 rate (0.25 msg/s) there is no queueing: both
  // model and simulation must sit on the bare service-time latency.
  const analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0,
      256, analytic::kPaperLiteralRatePerUs);
  const auto prediction = analytic::predict_latency(config);

  sim::SimOptions options;
  options.measured_messages = 5000;
  options.warmup_messages = 500;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();
  EXPECT_LT(relative_error(prediction.mean_latency_us, result.mean_latency_us),
            0.03);
}

TEST(ModelVsSim, HyperexponentialServiceTracksAllenCunneen) {
  // cv^2 = 4 service on both sides: the simulator samples a balanced-
  // means H2 and the model prices it through Allen–Cunneen. The same
  // moderate-load grid point as the M/D/1 check, so the queueing term
  // matters without saturating.
  analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0,
      256, 25e-6);
  config.scenario.service_cv2 = 4.0;
  const auto hyper_model = analytic::predict_latency(config);
  analytic::SystemConfig exponential = config;
  exponential.scenario = analytic::WorkloadScenario{};
  const auto exponential_model = analytic::predict_latency(exponential);

  sim::SimOptions options;
  options.measured_messages = 30000;
  options.warmup_messages = 5000;
  options.seed = 2718;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  EXPECT_LT(relative_error(hyper_model.mean_latency_us,
                           result.mean_latency_us),
            0.12)
      << "G/G/1 cv2=4 model " << hyper_model.mean_latency_us << " vs sim "
      << result.mean_latency_us;
  // Variability hurts on both sides of the fence.
  EXPECT_GT(result.mean_latency_us, exponential_model.mean_latency_us);
  EXPECT_GT(hyper_model.mean_latency_us, exponential_model.mean_latency_us);
}

TEST(ModelVsSim, MmppArrivalsTrackEffectiveCa2Model) {
  // 2-state MMPP sources in the simulator vs the analytic reduction to
  // an effective interarrival ca^2, compared open-loop (assumption 4
  // removed on both sides) so source burstiness reaches the queues —
  // closed-loop blocking throttles a bursting source structurally.
  // Small clusters keep the per-queue aggregation low; superposing many
  // independent MMPPs washes burstiness back toward Poisson while the
  // QNA-style model keeps the per-source SCV, so high aggregation is
  // exactly where the approximation is known to be pessimistic.
  analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 2, NetworkArchitecture::kNonBlocking, 1024.0,
      8, 3e-4);
  analytic::MmppArrivals mmpp;
  mmpp.burst_ratio = 8.0;
  mmpp.burst_fraction = 0.1;
  mmpp.burst_dwell_us = 5e4;
  config.scenario.mmpp = mmpp;
  analytic::ModelOptions none;
  none.fixed_point.method = analytic::SourceThrottling::kNone;
  const auto bursty_model = analytic::predict_latency(config, none);
  analytic::SystemConfig poisson = config;
  poisson.scenario = analytic::WorkloadScenario{};
  const auto poisson_model = analytic::predict_latency(poisson, none);
  // The scenario must actually engage: effective ca^2 > 1 raises the
  // prediction above the Poisson baseline.
  EXPECT_GT(bursty_model.mean_latency_us, poisson_model.mean_latency_us);

  sim::SimOptions options;
  options.measured_messages = 60000;
  options.warmup_messages = 8000;
  options.seed = 6021;
  options.closed_loop = false;
  sim::MultiClusterSim bursty_sim(config, options);
  const auto bursty_result = bursty_sim.run();
  sim::MultiClusterSim poisson_sim(poisson, options);
  const auto poisson_result = poisson_sim.run();

  // Burstiness measurably hurts in the simulation too (4-8% here).
  EXPECT_GT(bursty_result.mean_latency_us, poisson_result.mean_latency_us);
  EXPECT_LT(relative_error(bursty_model.mean_latency_us,
                           bursty_result.mean_latency_us),
            0.15)
      << "MMPP model " << bursty_model.mean_latency_us << " vs sim "
      << bursty_result.mean_latency_us;
}

TEST(ModelVsSim, FailureRepairTracksPerformabilityFold) {
  // Breakdown/repair on both sides: the simulator inflates each service
  // by Poisson(S/mtbf) exponential repairs, the model by the two-moment
  // completion-time fold. Frequent-but-cheap failures keep the DES
  // statistics dense.
  analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0,
      256, 25e-6);
  config.scenario.failure = analytic::FailureRepair{1000.0, 100.0};
  const auto degraded_model = analytic::predict_latency(config);
  analytic::SystemConfig healthy = config;
  healthy.scenario = analytic::WorkloadScenario{};
  const auto healthy_model = analytic::predict_latency(healthy);
  EXPECT_GT(degraded_model.mean_latency_us, healthy_model.mean_latency_us);

  sim::SimOptions options;
  options.measured_messages = 30000;
  options.warmup_messages = 5000;
  options.seed = 40897;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  EXPECT_GT(result.mean_latency_us, healthy_model.mean_latency_us);
  EXPECT_LT(relative_error(degraded_model.mean_latency_us,
                           result.mean_latency_us),
            0.15)
      << "performability model " << degraded_model.mean_latency_us
      << " vs sim " << result.mean_latency_us;
}

TEST(ModelVsSim, HeteroModelTracksHeteroSimulation) {
  // The cluster-of-clusters extension validates against the same
  // simulator running the heterogeneous configuration.
  analytic::ClusterOfClustersConfig config;
  analytic::ClusterSpec big;
  big.nodes = 24;
  big.icn1 = analytic::gigabit_ethernet();
  big.ecn1 = analytic::fast_ethernet();
  big.generation_rate_per_us = 1e-4;
  analytic::ClusterSpec small;
  small.nodes = 8;
  small.icn1 = analytic::fast_ethernet();
  small.ecn1 = analytic::gigabit_ethernet();
  small.generation_rate_per_us = 2e-4;
  config.clusters = {big, small, small};
  config.icn2 = analytic::fast_ethernet();
  config.switch_params = {24, 10.0};
  config.architecture = NetworkArchitecture::kNonBlocking;
  config.message_bytes = 1024.0;

  const auto open = analytic::predict_cluster_of_clusters(config);
  const auto amva = analytic::predict_cluster_of_clusters(
      config, analytic::HeteroSolver::kApproxMva);

  sim::SimOptions options;
  options.measured_messages = 10000;
  options.warmup_messages = 2000;
  options.seed = 99;
  sim::MultiClusterSim simulator(config, options);
  const auto result = simulator.run();

  EXPECT_LT(relative_error(open.mean_latency_us, result.mean_latency_us),
            0.15)
      << "hetero open model " << open.mean_latency_us << " vs sim "
      << result.mean_latency_us;
  // The multi-class AMVA extension should do at least as well, and
  // tightly in absolute terms.
  EXPECT_LT(relative_error(amva.mean_latency_us, result.mean_latency_us),
            0.08)
      << "hetero AMVA " << amva.mean_latency_us << " vs sim "
      << result.mean_latency_us;
}

}  // namespace
