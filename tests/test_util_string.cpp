#include <gtest/gtest.h>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(format_fixed(1.2355, 2), "1.24");
  EXPECT_EQ(format_fixed(-0.5, 0), "-0");  // printf semantics, documented
  EXPECT_EQ(format_fixed(100.0, 3), "100.000");
}

TEST(FormatCompact, TrimsAndSwitchesNotation) {
  EXPECT_EQ(format_compact(0.0), "0");
  EXPECT_EQ(format_compact(1024.0), "1024");
  EXPECT_EQ(format_compact(0.25), "0.25");
  EXPECT_EQ(format_compact(1e12, 3), "1e+12");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
  EXPECT_EQ(pad_right("abcdef", 4), "abcdef");
  EXPECT_EQ(pad_left("", 3), "   ");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split(",", ',').size(), 2u);
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ParseDouble, AcceptsValidNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double(" -3.5 "), -3.5);
  EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), ConfigError);
  EXPECT_THROW(parse_double("1.5x"), ConfigError);
  EXPECT_THROW(parse_double(""), ConfigError);
}

TEST(ParseInt, AcceptsValidIntegers) {
  EXPECT_EQ(parse_int("256"), 256);
  EXPECT_EQ(parse_int("-3"), -3);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_THROW(parse_int("1.5"), ConfigError);
  EXPECT_THROW(parse_int("ten"), ConfigError);
}

TEST(Units, TimeConversionsRoundTrip) {
  using namespace units;
  EXPECT_DOUBLE_EQ(ms_to_us(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(us_to_ms(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(s_to_us(0.25), 250000.0);
  EXPECT_DOUBLE_EQ(us_to_s(s_to_us(3.5)), 3.5);
}

TEST(Units, RateAndBandwidth) {
  using namespace units;
  // 1 MB/s is exactly 1 byte/us by construction of the unit system.
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_us(94.0), 94.0);
  EXPECT_DOUBLE_EQ(per_s_to_per_us(250.0), 2.5e-4);
  EXPECT_DOUBLE_EQ(per_ms_to_per_us(0.25), 2.5e-4);
  EXPECT_DOUBLE_EQ(per_us_to_per_s(per_s_to_per_us(123.0)), 123.0);
}

}  // namespace
