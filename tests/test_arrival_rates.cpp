// Jackson arrival rates, eqs. (1)-(5), plus flow-conservation properties.

#include <gtest/gtest.h>

#include "hmcs/analytic/arrival_rates.hpp"
#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::analytic::ArrivalRates;
using hmcs::analytic::compute_arrival_rates;
using hmcs::analytic::inter_cluster_probability;

TEST(ArrivalRates, MatchClosedFormsOnPaperConfig) {
  // C=4, N0=64, lambda=2.5e-4/us, P = 192/255.
  const double p = inter_cluster_probability(4, 64);
  const double lambda = 2.5e-4;
  const ArrivalRates r = compute_arrival_rates(4, 64, p, lambda);
  EXPECT_NEAR(r.icn1, 64.0 * (1.0 - p) * lambda, 1e-15);          // eq. (1)
  EXPECT_NEAR(r.ecn1_forward, 64.0 * p * lambda, 1e-15);          // eq. (2)
  EXPECT_NEAR(r.icn2, 4.0 * 64.0 * p * lambda, 1e-15);            // eq. (3)
  EXPECT_NEAR(r.ecn1_return, r.icn2 / 4.0, 1e-15);                // eq. (4)
  EXPECT_NEAR(r.ecn1, 2.0 * 64.0 * p * lambda, 1e-15);            // eq. (5)
}

TEST(ArrivalRates, SingleClusterHasNoRemoteTraffic) {
  const ArrivalRates r = compute_arrival_rates(1, 256, 0.0, 1e-4);
  EXPECT_DOUBLE_EQ(r.icn1, 256.0 * 1e-4);
  EXPECT_DOUBLE_EQ(r.ecn1, 0.0);
  EXPECT_DOUBLE_EQ(r.icn2, 0.0);
}

TEST(ArrivalRates, FullyRemoteWhenPIsOne) {
  const ArrivalRates r = compute_arrival_rates(256, 1, 1.0, 1e-4);
  EXPECT_DOUBLE_EQ(r.icn1, 0.0);
  EXPECT_DOUBLE_EQ(r.ecn1, 2.0 * 1e-4);
  EXPECT_DOUBLE_EQ(r.icn2, 256.0 * 1e-4);
}

TEST(ArrivalRates, FlowConservation) {
  // Total work entering the system per us: N*lambda messages. Local ones
  // hit ICN1 once; remote ones hit ECN1 twice and ICN2 once.
  for (std::uint32_t c : {2u, 4u, 16u}) {
    for (std::uint32_t n0 : {2u, 16u, 64u}) {
      const double p = inter_cluster_probability(c, n0);
      const double lambda = 3.7e-4;
      const ArrivalRates r = compute_arrival_rates(c, n0, p, lambda);
      const double n = static_cast<double>(c) * n0;
      // Per-cluster centres aggregate to C * rate; ICN2 is global.
      EXPECT_NEAR(c * r.icn1, n * (1.0 - p) * lambda, 1e-12);
      EXPECT_NEAR(c * r.ecn1, 2.0 * n * p * lambda, 1e-12);
      EXPECT_NEAR(r.icn2, n * p * lambda, 1e-12);
      // ECN1 forward flow equals the ICN2 share of one cluster.
      EXPECT_NEAR(r.ecn1_forward, r.icn2 / c, 1e-15);
    }
  }
}

TEST(ArrivalRates, LinearInLambda) {
  const double p = inter_cluster_probability(8, 32);
  const ArrivalRates base = compute_arrival_rates(8, 32, p, 1e-4);
  const ArrivalRates scaled = compute_arrival_rates(8, 32, p, 3e-4);
  EXPECT_NEAR(scaled.icn1, 3.0 * base.icn1, 1e-15);
  EXPECT_NEAR(scaled.ecn1, 3.0 * base.ecn1, 1e-15);
  EXPECT_NEAR(scaled.icn2, 3.0 * base.icn2, 1e-15);
}

TEST(ArrivalRates, Validation) {
  EXPECT_THROW(compute_arrival_rates(0, 4, 0.5, 1e-4), hmcs::ConfigError);
  EXPECT_THROW(compute_arrival_rates(4, 0, 0.5, 1e-4), hmcs::ConfigError);
  EXPECT_THROW(compute_arrival_rates(4, 4, 1.5, 1e-4), hmcs::ConfigError);
  EXPECT_THROW(compute_arrival_rates(4, 4, -0.1, 1e-4), hmcs::ConfigError);
  EXPECT_THROW(compute_arrival_rates(4, 4, 0.5, -1e-4), hmcs::ConfigError);
}

}  // namespace
