// M/M/1 formulas, eq. (16) and friends.

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/util/error.hpp"

namespace {

namespace mm1 = hmcs::analytic::mm1;

TEST(Mm1, ResponseTimeEq16) {
  // W = 1/(mu - lambda).
  EXPECT_DOUBLE_EQ(mm1::response_time(0.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mm1::response_time(0.0, 4.0), 0.25);  // pure service
  EXPECT_DOUBLE_EQ(mm1::response_time(0.9, 1.0), 10.0);
}

TEST(Mm1, SaturationYieldsInfinity) {
  EXPECT_TRUE(std::isinf(mm1::response_time(1.0, 1.0)));
  EXPECT_TRUE(std::isinf(mm1::response_time(2.0, 1.0)));
  EXPECT_TRUE(std::isinf(mm1::number_in_system(1.0, 1.0)));
  EXPECT_TRUE(std::isinf(mm1::waiting_time(1.5, 1.0)));
}

TEST(Mm1, LittleLawConsistency) {
  // L = lambda * W for every stable load.
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double mu = 2.0;
    const double lambda = rho * mu;
    EXPECT_NEAR(mm1::number_in_system(lambda, mu),
                lambda * mm1::response_time(lambda, mu), 1e-12);
    EXPECT_NEAR(mm1::number_in_queue(lambda, mu),
                lambda * mm1::waiting_time(lambda, mu), 1e-12);
  }
}

TEST(Mm1, QueueDecomposition) {
  const double lambda = 0.6;
  const double mu = 1.0;
  // L = Lq + rho; W = Wq + 1/mu.
  EXPECT_NEAR(mm1::number_in_system(lambda, mu),
              mm1::number_in_queue(lambda, mu) + mm1::utilization(lambda, mu),
              1e-12);
  EXPECT_NEAR(mm1::response_time(lambda, mu),
              mm1::waiting_time(lambda, mu) + 1.0 / mu, 1e-12);
}

TEST(Mm1, StabilityPredicate) {
  EXPECT_TRUE(mm1::is_stable(0.99, 1.0));
  EXPECT_FALSE(mm1::is_stable(1.0, 1.0));
  EXPECT_TRUE(mm1::is_stable(0.0, 0.001));
}

TEST(Mm1, ResponseMonotoneInLoad) {
  double previous = 0.0;
  for (double lambda = 0.0; lambda < 1.0; lambda += 0.05) {
    const double w = mm1::response_time(lambda, 1.0);
    EXPECT_GT(w, previous);
    previous = w;
  }
}

TEST(Mm1, Validation) {
  EXPECT_THROW(mm1::utilization(0.5, 0.0), hmcs::ConfigError);
  EXPECT_THROW(mm1::utilization(-0.5, 1.0), hmcs::ConfigError);
  EXPECT_THROW(mm1::response_time(0.5, -1.0), hmcs::ConfigError);
}

// -------------------------------------------------------- M/G/1 (PK)

namespace mg1 = hmcs::analytic::mg1;

TEST(Mg1, Cv2OneRecoversExponential) {
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(mg1::response_time(rho, 1.0, 1.0), mm1::response_time(rho, 1.0),
                1e-12);
    EXPECT_NEAR(mg1::number_in_system(rho, 1.0, 1.0),
                mm1::number_in_system(rho, 1.0), 1e-12);
  }
}

TEST(Mg1, DeterministicHalvesTheWaitingTerm) {
  const double lambda = 0.6;
  const double mu = 1.0;
  const double wait_exp = mm1::waiting_time(lambda, mu);
  const double wait_det = mg1::response_time(lambda, mu, 0.0) - 1.0 / mu;
  EXPECT_NEAR(wait_det, 0.5 * wait_exp, 1e-12);
}

TEST(Mg1, HighVariabilityInflatesTheQueue) {
  // cv^2 = 4 (hyper-exponential-ish) waits 2.5x the M/M/1 queue.
  const double lambda = 0.5;
  const double mu = 1.0;
  const double wait_exp = mm1::waiting_time(lambda, mu);
  const double wait_hyper = mg1::response_time(lambda, mu, 4.0) - 1.0;
  EXPECT_NEAR(wait_hyper, 2.5 * wait_exp, 1e-12);
}

TEST(Mg1, SaturationAndValidation) {
  EXPECT_TRUE(std::isinf(mg1::response_time(1.0, 1.0, 0.0)));
  EXPECT_THROW(mg1::response_time(0.5, 1.0, -0.5), hmcs::ConfigError);
}

// ------------------------------------------- G/G/1 (Allen–Cunneen)

namespace gg1 = hmcs::analytic::gg1;

TEST(Gg1, ReducesToPollaczekKhinchineAtPoissonArrivals) {
  // ca^2 = 1 is M/G/1 exactly — and bit-identically, since (1+cv2) and
  // (ca2+cv2) are the same floating-point sum at ca2 = 1.
  for (double rho : {0.1, 0.5, 0.9, 0.99}) {
    for (double cv2 : {0.0, 0.25, 1.0, 4.0}) {
      EXPECT_EQ(gg1::response_time(rho, 1.0, 1.0, cv2),
                mg1::response_time(rho, 1.0, cv2));
      EXPECT_EQ(gg1::number_in_system(rho, 1.0, 1.0, cv2),
                mg1::number_in_system(rho, 1.0, cv2));
    }
  }
}

TEST(Gg1, ReducesToMm1AtBothOne) {
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(gg1::response_time(rho, 1.0, 1.0, 1.0),
                mm1::response_time(rho, 1.0), 1e-12);
  }
}

TEST(Gg1, DeterministicEverythingRemovesTheQueueingTerm) {
  // ca^2 = cs^2 = 0: W = S at any stable load (D/D/1 never queues).
  EXPECT_DOUBLE_EQ(gg1::response_time(0.9, 1.0, 0.0, 0.0), 1.0);
}

TEST(Gg1, QueueingTermScalesWithVariabilitySum) {
  // The waiting term is linear in (ca2 + cs2); slices through the plane
  // with the same sum coincide.
  const double lambda = 0.7;
  const double mu = 1.0;
  const double service = 1.0 / mu;
  EXPECT_NEAR(gg1::response_time(lambda, mu, 2.0, 0.5),
              gg1::response_time(lambda, mu, 0.5, 2.0), 1e-12);
  const double wait_mm1 = mm1::waiting_time(lambda, mu);
  EXPECT_NEAR(gg1::response_time(lambda, mu, 3.0, 1.0) - service,
              2.0 * wait_mm1, 1e-12);
}

TEST(Gg1, ZeroArrivalRateIsPureService) {
  EXPECT_DOUBLE_EQ(gg1::response_time(0.0, 4.0, 9.0, 9.0), 0.25);
  EXPECT_DOUBLE_EQ(gg1::number_in_system(0.0, 4.0, 9.0, 9.0), 0.0);
}

TEST(Gg1, SaturationYieldsInfinityNotThrow) {
  EXPECT_TRUE(std::isinf(gg1::response_time(1.0, 1.0, 0.0, 0.0)));
  EXPECT_TRUE(std::isinf(gg1::response_time(2.0, 1.0, 4.0, 4.0)));
  EXPECT_TRUE(std::isinf(gg1::number_in_system(1.0, 1.0, 1.0, 1.0)));
}

TEST(Gg1, Validation) {
  EXPECT_THROW(gg1::response_time(0.5, 1.0, -1.0, 1.0), hmcs::ConfigError);
  EXPECT_THROW(gg1::response_time(0.5, 1.0, 1.0, -1.0), hmcs::ConfigError);
}

}  // namespace
