#include <gtest/gtest.h>

#include <array>

#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("seed", "rng seed", "1");
  cli.add_option("name", "a name");  // required (no default)
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, ParsesSeparateValueSyntax) {
  auto cli = make_parser();
  const std::array<const char*, 5> argv{"prog", "--seed", "7", "--name", "x"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("seed"), 7);
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, ParsesEqualsSyntaxAndFlags) {
  auto cli = make_parser();
  const std::array<const char*, 3> argv{"prog", "--seed=11", "--verbose"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("seed"), 11);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, DefaultsApplyWhenUnset) {
  auto cli = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("seed"), 1);
  EXPECT_FALSE(cli.has("seed"));
}

TEST(Cli, RequiredOptionWithoutValueThrowsOnAccess) {
  auto cli = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_string("name"), ConfigError);
}

TEST(Cli, HelpShortCircuits) {
  auto cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--help"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.help_text().find("--seed"), std::string::npos);
  EXPECT_NE(cli.help_text().find("default: 1"), std::string::npos);
}

TEST(Cli, RejectsUnknownOption) {
  auto cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--bogus"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               ConfigError);
}

TEST(Cli, RejectsMissingValue) {
  auto cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--seed"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               ConfigError);
}

TEST(Cli, RejectsValueOnFlag) {
  auto cli = make_parser();
  const std::array<const char*, 2> argv{"prog", "--verbose=yes"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               ConfigError);
}

TEST(Cli, RejectsDuplicateDeclaration) {
  CliParser cli("prog", "x");
  cli.add_option("a", "first");
  EXPECT_THROW(cli.add_option("a", "again"), ConfigError);
  EXPECT_THROW(cli.add_flag("a", "again"), ConfigError);
}

TEST(Cli, CollectsPositionalArguments) {
  auto cli = make_parser();
  const std::array<const char*, 4> argv{"prog", "input.txt", "--seed", "3"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, GetUintAcceptsNonNegativeValues) {
  auto cli = make_parser();
  const std::array<const char*, 3> argv{"prog", "--seed", "42"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_uint("seed"), 42ull);
}

TEST(Cli, GetUintRejectsNegativeInsteadOfWrapping) {
  // --seed -1 used to wrap to 2^64-1 through an unchecked cast; it must
  // be a loud configuration error instead.
  auto cli = make_parser();
  const std::array<const char*, 3> argv{"prog", "--seed", "-1"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_uint("seed"), ConfigError);
}

TEST(Cli, UndeclaredAccessIsAnError) {
  auto cli = make_parser();
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_string("nope"), ConfigError);
  EXPECT_THROW(cli.get_flag("seed"), ConfigError);  // option, not flag
}

}  // namespace
