// The batched Backend path (Backend::evaluate_batch + RunnerOptions::
// batch_cells): a batched analytic sweep is bit-identical to the
// per-cell run — values, statuses, attempts — at any chunk size and
// thread count; chunks containing resumed cells write only the pending
// ones; a failing chunk falls back to per-cell predict() with full
// error isolation; and chunk deadlines bound batched exact-MVA cells.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/runner/journal.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using runner::AnalyticBackend;
using runner::Backend;
using runner::BatchPointContext;
using runner::CellStatus;
using runner::FailurePolicy;
using runner::PointContext;
using runner::PointResult;
using runner::RunnerOptions;
using runner::SweepResult;
using runner::SweepSpec;

/// One cluster size, a rate axis from idle through deep saturation —
/// the grid where statuses actually vary (kOk and kDegraded cells).
SweepSpec rate_spec() {
  SweepSpec spec;
  spec.id = "batch";
  spec.axes.clusters = {16};
  spec.axes.lambda_per_us = {0.0,    1e-4,   2e-4,   4e-4,   6e-4,  8e-4,
                             1.2e-3, 1.6e-3, 2.4e-3, 3.2e-3, 4e-3,  5e-3};
  spec.base_seed = 7;
  return spec;
}

void expect_identical_cells(const SweepResult& a, const SweepResult& b,
                            const char* what) {
  ASSERT_EQ(a.cells.size(), b.cells.size()) << what;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const PointResult& x = a.cells[i];
    const PointResult& y = b.cells[i];
    EXPECT_EQ(x.mean_latency_us, y.mean_latency_us) << what << " cell " << i;
    EXPECT_EQ(x.ci_half_us, y.ci_half_us) << what << " cell " << i;
    EXPECT_EQ(x.lambda_offered, y.lambda_offered) << what << " cell " << i;
    EXPECT_EQ(x.lambda_effective, y.lambda_effective)
        << what << " cell " << i;
    EXPECT_EQ(x.converged, y.converged) << what << " cell " << i;
    EXPECT_EQ(x.max_center_utilization, y.max_center_utilization)
        << what << " cell " << i;
    EXPECT_EQ(x.status, y.status) << what << " cell " << i;
    EXPECT_EQ(x.attempts, y.attempts) << what << " cell " << i;
    EXPECT_EQ(x.error, y.error) << what << " cell " << i;
  }
}

// ---------------------------------------------------------------------
// Bit-identity: batching is an execution detail, not a model change.
// The default AnalyticBackend runs the batch path with warm starts off,
// so every chunk size reproduces the per-cell sweep exactly — including
// the kDegraded statuses of the non-converged saturated cells.

TEST(BatchBackend, BatchedSweepIsBitIdenticalToScalarForEveryMethod) {
  const analytic::SourceThrottling methods[] = {
      analytic::SourceThrottling::kNone, analytic::SourceThrottling::kPicard,
      analytic::SourceThrottling::kBisection,
      analytic::SourceThrottling::kExactMva};
  for (const analytic::SourceThrottling method : methods) {
    analytic::ModelOptions model;
    model.fixed_point.method = method;
    const auto backend = std::make_shared<AnalyticBackend>(model);

    RunnerOptions scalar;
    scalar.threads = 2;
    scalar.on_error = FailurePolicy::kCollectAll;
    const SweepResult reference = run_sweep(rate_spec(), {backend}, scalar);

    // Chunk sizes that divide the 12 points, leave a ragged tail, and
    // exceed the grid.
    for (const std::uint32_t chunk : {2u, 5u, 8u, 64u}) {
      RunnerOptions batched = scalar;
      batched.batch_cells = chunk;
      const SweepResult result = run_sweep(rate_spec(), {backend}, batched);
      expect_identical_cells(reference, result, "chunk");
    }
  }
}

TEST(BatchBackend, BatchedSweepIsThreadCountInvariant) {
  // Picard leaves the saturated tail non-converged, so the grid carries
  // both kOk and kDegraded cells through the comparison.
  analytic::ModelOptions model;
  model.fixed_point.method = analytic::SourceThrottling::kPicard;
  const auto backend = std::make_shared<AnalyticBackend>(model);
  SweepResult reference;
  for (const std::uint32_t threads : {1u, 4u}) {
    RunnerOptions options;
    options.threads = threads;
    options.batch_cells = 4;
    options.on_error = FailurePolicy::kCollectAll;
    const SweepResult result = run_sweep(rate_spec(), {backend}, options);
    if (threads == 1u) {
      reference = result;
      // The saturated tail must actually exercise the degraded path.
      EXPECT_GT(result.count_status(CellStatus::kDegraded), 0u);
    } else {
      expect_identical_cells(reference, result, "threads");
    }
  }
}

// ---------------------------------------------------------------------
// Resume: chunk boundaries live in point-index space, so a chunk that
// contains journaled cells re-evaluates but writes only the pending
// ones — the merged result stays bit-identical to the uninterrupted run.

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

TEST(BatchBackend, ResumedBatchedSweepMergesBitIdentically) {
  const SweepSpec spec = rate_spec();
  const auto backend = std::make_shared<AnalyticBackend>();

  RunnerOptions scalar;
  scalar.threads = 1;
  scalar.on_error = FailurePolicy::kCollectAll;
  const SweepResult reference = run_sweep(spec, {backend}, scalar);

  // Journal only the even cells, as an interrupted run would have.
  const std::string path = temp_path("hmcs_batch_resume.jsonl");
  runner::JournalWriter::Shape shape;
  shape.id = spec.id;
  shape.points = reference.points.size();
  shape.backend_names = reference.backend_names;
  {
    runner::JournalWriter writer(path, shape, /*append=*/false);
    for (std::size_t p = 0; p < reference.points.size(); p += 2) {
      writer.record(p, reference.points[p].seed, reference.cells[p]);
    }
  }
  const runner::SweepJournal journal = runner::load_sweep_journal(path);
  ASSERT_EQ(journal.completed(), (reference.points.size() + 1) / 2);

  RunnerOptions resumed = scalar;
  resumed.batch_cells = 8;
  resumed.resume = &journal;
  const SweepResult merged = run_sweep(spec, {backend}, resumed);
  expect_identical_cells(reference, merged, "resume");
}

// ---------------------------------------------------------------------
// Fallback: a throwing evaluate_batch fails the whole chunk, and the
// runner re-runs its pending cells through the per-cell machinery —
// with per-cell error isolation intact.

class FallbackProbeBackend : public Backend {
 public:
  explicit FallbackProbeBackend(int poison_index = -1)
      : poison_(poison_index) {}

  const std::string& name() const override { return name_; }
  std::size_t batch_capacity() const override { return 64; }

  PointResult predict(const analytic::SystemConfig&,
                      const PointContext& ctx) const override {
    if (static_cast<int>(ctx.index) == poison_) {
      throw hmcs::ConfigError("poisoned point");
    }
    PointResult result;
    result.mean_latency_us = 100.0 + static_cast<double>(ctx.index);
    return result;
  }

  void evaluate_batch(const analytic::SystemConfig* const*, std::size_t,
                      const BatchPointContext&, PointResult*) const override {
    throw hmcs::LogicError("batch path rejected");
  }

 private:
  int poison_;
  std::string name_ = "probe";
};

SweepSpec probe_spec() {
  SweepSpec spec;
  spec.id = "probe";
  spec.axes.clusters = {1, 2, 4, 8};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.base_seed = 11;
  return spec;
}

TEST(BatchBackend, FailingChunkFallsBackToPerCellEvaluation) {
  RunnerOptions options;
  options.threads = 2;
  options.batch_cells = 4;
  const SweepResult result =
      run_sweep(probe_spec(), {std::make_shared<FallbackProbeBackend>()},
                options);
  ASSERT_EQ(result.cells.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_EQ(result.at(p, 0).status, CellStatus::kOk) << p;
    EXPECT_EQ(result.at(p, 0).mean_latency_us,
              100.0 + static_cast<double>(p));
    EXPECT_EQ(result.at(p, 0).attempts, 1u);
  }
}

TEST(BatchBackend, FallbackPreservesPerCellErrorIsolation) {
  RunnerOptions options;
  options.threads = 1;
  options.batch_cells = 8;  // one chunk holding the poisoned cell
  options.on_error = FailurePolicy::kCollectAll;
  const SweepResult result = run_sweep(
      probe_spec(), {std::make_shared<FallbackProbeBackend>(3)}, options);
  EXPECT_EQ(result.at(3, 0).status, CellStatus::kFailed);
  EXPECT_NE(result.at(3, 0).error.find("poisoned point"), std::string::npos);
  for (const std::size_t p : {0u, 1u, 2u, 4u, 5u, 6u, 7u}) {
    EXPECT_EQ(result.at(p, 0).status, CellStatus::kOk) << p;
  }
}

TEST(BatchBackend, DefaultEvaluateBatchIsALogicError) {
  // Backends that never advertise batch_capacity() > 1 keep the base
  // implementation, which refuses to run.
  class PredictOnlyBackend : public Backend {
   public:
    const std::string& name() const override { return name_; }
    PointResult predict(const analytic::SystemConfig&,
                        const PointContext&) const override {
      return {};
    }

   private:
    std::string name_ = "predict-only";
  };
  PredictOnlyBackend backend;
  EXPECT_EQ(backend.batch_capacity(), 1u);
  EXPECT_THROW(backend.evaluate_batch(nullptr, 0, {}, nullptr),
               hmcs::LogicError);
}

// ---------------------------------------------------------------------
// Deadlines: the chunk token (cell budget × chunk size) is threaded
// into the solver, so even population-2^20 exact-MVA cells unwind as
// kTimedOut — on the batched path and the per-cell path alike.

TEST(BatchBackend, DeadlineBoundsExactMvaCellsOnBothPaths) {
  SweepSpec spec;
  spec.id = "mva-deadline";
  spec.total_nodes = 1u << 20;
  spec.axes.clusters = {1024};
  spec.axes.lambda_per_us = {1e-4, 2e-4, 3e-4, 4e-4};
  analytic::ModelOptions model;
  model.fixed_point.method = analytic::SourceThrottling::kExactMva;
  const auto backend = std::make_shared<AnalyticBackend>(model);

  for (const std::uint32_t chunk : {0u, 3u}) {
    RunnerOptions options;
    options.threads = 1;
    options.batch_cells = chunk;
    options.cell_deadline_ms = 1e-3;
    options.on_error = FailurePolicy::kCollectAll;
    const SweepResult result = run_sweep(spec, {backend}, options);
    EXPECT_EQ(result.count_status(CellStatus::kTimedOut), 4u)
        << "batch_cells=" << chunk;
  }
}

}  // namespace
