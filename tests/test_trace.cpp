// Message-lifecycle tracing.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/sim/trace.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using sim::TraceEvent;
using sim::TraceEventKind;
using sim::TraceRecorder;

std::shared_ptr<TraceRecorder> traced_run(std::size_t capacity = 100000) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0, 16, 1e-4);
  sim::SimOptions options;
  options.measured_messages = 200;
  options.warmup_messages = 0;
  options.seed = 3;
  options.trace = std::make_shared<TraceRecorder>(capacity);
  sim::MultiClusterSim simulator(config, options);
  simulator.run();
  return options.trace;
}

TEST(Trace, RecordsChronologically) {
  const auto trace = traced_run();
  ASSERT_FALSE(trace->events().empty());
  double previous = 0.0;
  for (const TraceEvent& event : trace->events()) {
    EXPECT_GE(event.time_us, previous);
    previous = event.time_us;
  }
}

TEST(Trace, EveryDeliveryHasAGenerationAndLegalLifecycle) {
  const auto trace = traced_run();
  // Track per (message slot) the running lifecycle; slots are reused, so
  // a generation resets the state machine.
  std::map<std::uint64_t, TraceEventKind> last_kind;
  std::uint64_t delivered = 0;
  for (const TraceEvent& event : trace->events()) {
    switch (event.kind) {
      case TraceEventKind::kGenerated:
        // A slot may only be regenerated after a delivery (or fresh).
        if (last_kind.contains(event.message_id)) {
          EXPECT_EQ(last_kind[event.message_id], TraceEventKind::kDelivered);
        }
        break;
      case TraceEventKind::kEnqueued:
        EXPECT_TRUE(last_kind[event.message_id] == TraceEventKind::kGenerated ||
                    last_kind[event.message_id] == TraceEventKind::kDeparted);
        EXPECT_FALSE(event.center.empty());
        break;
      case TraceEventKind::kDeparted:
        EXPECT_EQ(last_kind[event.message_id], TraceEventKind::kEnqueued);
        EXPECT_FALSE(event.center.empty());
        break;
      case TraceEventKind::kDelivered:
        EXPECT_EQ(last_kind[event.message_id], TraceEventKind::kDeparted);
        ++delivered;
        break;
    }
    last_kind[event.message_id] = event.kind;
  }
  EXPECT_EQ(delivered, 200u);
}

TEST(Trace, RemoteMessagesVisitThreeCenters) {
  const auto trace = traced_run();
  // Count enqueue events between one generation and its delivery.
  std::map<std::uint64_t, int> enqueues;
  bool saw_remote = false;
  bool saw_local = false;
  for (const TraceEvent& event : trace->events()) {
    if (event.kind == TraceEventKind::kGenerated) enqueues[event.message_id] = 0;
    if (event.kind == TraceEventKind::kEnqueued) ++enqueues[event.message_id];
    if (event.kind == TraceEventKind::kDelivered) {
      if (enqueues[event.message_id] == 3) saw_remote = true;
      if (enqueues[event.message_id] == 1) saw_local = true;
      EXPECT_TRUE(enqueues[event.message_id] == 1 ||
                  enqueues[event.message_id] == 3);
    }
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(saw_local);
}

TEST(Trace, CapacityTruncates) {
  const auto trace = traced_run(50);
  EXPECT_EQ(trace->events().size(), 50u);
  EXPECT_TRUE(trace->truncated());
}

TEST(Trace, DroppedCountMatchesOverflow) {
  // Same seed/config, so both runs see the identical event stream; the
  // capped recorder must account for exactly the overflow.
  const auto full = traced_run();
  const auto capped = traced_run(50);
  EXPECT_FALSE(full->truncated());
  EXPECT_EQ(full->dropped_count(), 0u);
  EXPECT_EQ(capped->dropped_count(), full->events().size() - 50);
}

TEST(Trace, CsvHasHeaderAndRows) {
  const auto trace = traced_run(100);
  const std::string csv = trace->to_csv();
  EXPECT_EQ(csv.rfind("time_us,kind,message,source,destination,center", 0), 0u);
  EXPECT_NE(csv.find("generated"), std::string::npos);
  EXPECT_NE(csv.find("ICN1["), std::string::npos);
}

TEST(Trace, Validation) {
  EXPECT_THROW(TraceRecorder(0), ConfigError);
}

}  // namespace
