// Structure-of-arrays batch solver (batch_solver.hpp): cold-path
// bit-identity with the scalar fixed-point solver for every
// SourceThrottling method over a dense rate grid (idle, light,
// saturated cells), the warm-start tolerance contract, topology
// grouping in predict_latency_batch, and cancellation/deadline
// unwinding.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hmcs/analytic/batch_solver.hpp"
#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

SystemConfig make_config(std::uint32_t clusters,
                         std::uint32_t nodes_per_cluster) {
  SystemConfig config;
  config.clusters = clusters;
  config.nodes_per_cluster = nodes_per_cluster;
  config.icn1 = gigabit_ethernet();
  config.ecn1 = fast_ethernet();
  config.icn2 = gigabit_ethernet();
  return config;
}

/// Idle cell, then a ramp from light load through deep saturation of
/// the ECN1 centre — the mix every equivalence test runs over. The tail
/// cells are far past saturation, where the Picard recurrence
/// oscillates and never converges.
std::vector<double> dense_rates() {
  std::vector<double> rates{0.0, 1e-5, 2e-5, 5e-5};  // Picard-friendly
  for (int i = 1; i <= 48; ++i) {
    rates.push_back(5e-3 * static_cast<double>(i) / 48.0);
  }
  return rates;
}

const SourceThrottling kAllMethods[] = {
    SourceThrottling::kNone, SourceThrottling::kPicard,
    SourceThrottling::kBisection, SourceThrottling::kExactMva};

const char* method_name(SourceThrottling method) {
  switch (method) {
    case SourceThrottling::kNone: return "none";
    case SourceThrottling::kPicard: return "picard";
    case SourceThrottling::kBisection: return "bisection";
    case SourceThrottling::kExactMva: return "mva";
  }
  return "?";
}

double rel_error(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom > 0.0 ? std::fabs(a - b) / denom : 0.0;
}

// ---------------------------------------------------------------------
// Cold path: with warm starts off the batch solver's per-cell iterate
// sequence is arithmetic-identical to the scalar solver's, so every
// field matches bitwise — converged or not.

TEST(BatchSolver, ColdPathIsBitIdenticalForEveryMethod) {
  RateGrid grid;
  grid.base = make_config(16, 8);
  grid.rates_per_us = dense_rates();
  const CenterServiceTimes service = center_service_times(grid.base);

  for (const SourceThrottling method : kAllMethods) {
    FixedPointOptions options;
    options.method = method;
    const std::vector<FixedPointResult> batch =
        solve_effective_rate_batch(grid, options, BatchOptions{false});
    ASSERT_EQ(batch.size(), grid.rates_per_us.size());

    for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
      SystemConfig cell = grid.base;
      cell.generation_rate_per_us = grid.rates_per_us[i];
      const FixedPointResult scalar =
          solve_effective_rate(cell, service, options);
      EXPECT_EQ(batch[i].lambda_effective, scalar.lambda_effective)
          << method_name(method) << " cell " << i;
      EXPECT_EQ(batch[i].total_queue_length, scalar.total_queue_length)
          << method_name(method) << " cell " << i;
      EXPECT_EQ(batch[i].iterations, scalar.iterations)
          << method_name(method) << " cell " << i;
      EXPECT_EQ(batch[i].converged, scalar.converged)
          << method_name(method) << " cell " << i;
    }
  }
}

TEST(BatchSolver, ColdPathHonoursNonDefaultSolverKnobs) {
  RateGrid grid;
  grid.base = make_config(8, 4);
  grid.rates_per_us = dense_rates();
  const CenterServiceTimes service = center_service_times(grid.base);

  FixedPointOptions options;
  options.method = SourceThrottling::kPicard;
  options.picard_damping = 1.0;  // the paper's undamped recurrence
  options.queue_rule = QueueLengthRule::kConsistent;
  options.service_cv2 = 0.0;  // deterministic service
  options.tolerance = 1e-9;
  options.max_iterations = 50;

  const std::vector<FixedPointResult> batch =
      solve_effective_rate_batch(grid, options, BatchOptions{false});
  for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
    SystemConfig cell = grid.base;
    cell.generation_rate_per_us = grid.rates_per_us[i];
    const FixedPointResult scalar =
        solve_effective_rate(cell, service, options);
    EXPECT_EQ(batch[i].lambda_effective, scalar.lambda_effective) << i;
    EXPECT_EQ(batch[i].iterations, scalar.iterations) << i;
    EXPECT_EQ(batch[i].converged, scalar.converged) << i;
  }
}

// ---------------------------------------------------------------------
// Warm starts change the iterate trajectory, not the fixed point:
// converged cells agree with the scalar solver within the solver
// tolerance. (Non-converged cells are trajectory-dependent, by design.)

TEST(BatchSolver, WarmStartAgreesOnConvergedCells) {
  RateGrid grid;
  grid.base = make_config(16, 8);
  grid.rates_per_us = dense_rates();
  const CenterServiceTimes service = center_service_times(grid.base);

  for (const SourceThrottling method : kAllMethods) {
    FixedPointOptions options;
    options.method = method;
    const std::vector<FixedPointResult> batch =
        solve_effective_rate_batch(grid, options, BatchOptions{true});

    std::size_t compared = 0;
    for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
      SystemConfig cell = grid.base;
      cell.generation_rate_per_us = grid.rates_per_us[i];
      const FixedPointResult scalar =
          solve_effective_rate(cell, service, options);
      if (!scalar.converged || !batch[i].converged) continue;
      ++compared;
      EXPECT_LE(rel_error(batch[i].lambda_effective, scalar.lambda_effective),
                1e-8)
          << method_name(method) << " cell " << i;
    }
    // Every method converges at least on the idle and light-load cells.
    EXPECT_GE(compared, 2u) << method_name(method);
  }
}

// ---------------------------------------------------------------------
// Structural cases.

TEST(BatchSolver, ZeroRateCellsShortCircuit) {
  RateGrid grid;
  grid.base = make_config(4, 4);
  grid.rates_per_us = {0.0, 0.0, 1e-4, 0.0};
  for (const SourceThrottling method : kAllMethods) {
    FixedPointOptions options;
    options.method = method;
    const std::vector<FixedPointResult> batch =
        solve_effective_rate_batch(grid, options);
    for (const std::size_t i : {0u, 1u, 3u}) {
      EXPECT_EQ(batch[i].lambda_effective, 0.0) << method_name(method);
      EXPECT_EQ(batch[i].total_queue_length, 0.0) << method_name(method);
      EXPECT_EQ(batch[i].iterations, 0u) << method_name(method);
      EXPECT_TRUE(batch[i].converged) << method_name(method);
    }
    EXPECT_GT(batch[2].lambda_effective, 0.0) << method_name(method);
  }
}

TEST(BatchSolver, EmptyGridReturnsEmpty) {
  RateGrid grid;
  grid.base = make_config(4, 4);
  EXPECT_TRUE(solve_effective_rate_batch(grid).empty());
}

TEST(BatchSolver, RejectsInvalidCellRates) {
  RateGrid grid;
  grid.base = make_config(4, 4);
  grid.rates_per_us = {1e-4, -1e-4};
  EXPECT_THROW(solve_effective_rate_batch(grid), hmcs::ConfigError);
  grid.rates_per_us = {std::nan("")};
  EXPECT_THROW(solve_effective_rate_batch(grid), hmcs::ConfigError);
}

TEST(BatchSolver, MvaIterationsReportPopulationSteps) {
  // The exact-MVA path reports one recursion step per customer; the
  // field is 64-bit so total_nodes >= 2^32 cannot truncate.
  static_assert(sizeof(FixedPointResult{}.iterations) == 8);
  RateGrid grid;
  grid.base = make_config(4, 8);  // 32 nodes
  grid.rates_per_us = {1e-4, 2e-4};
  FixedPointOptions options;
  options.method = SourceThrottling::kExactMva;
  const std::vector<FixedPointResult> batch =
      solve_effective_rate_batch(grid, options);
  EXPECT_EQ(batch[0].iterations, 32u);
  EXPECT_EQ(batch[1].iterations, 32u);
}

// ---------------------------------------------------------------------
// predict_latency_batch: contiguous same-topology runs are grouped; the
// per-cell epilogue is shared with predict_latency, so the cold batch
// is bit-identical cell for cell across mixed-topology inputs —
// including singleton groups and the kExactMva path.

TEST(BatchSolver, PredictBatchMatchesScalarAcrossMixedTopologies) {
  const SystemConfig small = make_config(4, 8);
  const SystemConfig large = make_config(16, 8);
  SystemConfig big_message = small;
  big_message.message_bytes = 4096.0;

  std::vector<SystemConfig> configs;
  for (int i = 0; i < 10; ++i) {  // group longer than kWarmStride
    SystemConfig cell = small;
    cell.generation_rate_per_us = 1e-4 * static_cast<double>(i);
    configs.push_back(cell);
  }
  for (int i = 0; i < 3; ++i) {
    SystemConfig cell = large;
    cell.generation_rate_per_us = 5e-5 * static_cast<double>(i + 1);
    configs.push_back(cell);
  }
  configs.push_back(big_message);  // singleton group
  configs.push_back(small);       // regrouping after the singleton

  for (const SourceThrottling method : kAllMethods) {
    ModelOptions options;
    options.fixed_point.method = method;
    const std::vector<LatencyPrediction> batch =
        predict_latency_batch(configs, options, BatchOptions{false});
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const LatencyPrediction scalar = predict_latency(configs[i], options);
      EXPECT_EQ(batch[i].mean_latency_us, scalar.mean_latency_us)
          << method_name(method) << " cell " << i;
      EXPECT_EQ(batch[i].lambda_offered, scalar.lambda_offered);
      EXPECT_EQ(batch[i].lambda_effective, scalar.lambda_effective);
      EXPECT_EQ(batch[i].total_queue_length, scalar.total_queue_length);
      EXPECT_EQ(batch[i].fixed_point_converged,
                scalar.fixed_point_converged);
      EXPECT_EQ(batch[i].fixed_point_iterations,
                scalar.fixed_point_iterations);
      EXPECT_EQ(batch[i].icn1.response_time_us, scalar.icn1.response_time_us);
      EXPECT_EQ(batch[i].ecn1.queue_length, scalar.ecn1.queue_length);
      EXPECT_EQ(batch[i].icn2.utilization, scalar.icn2.utilization);
    }
  }
}

TEST(BatchSolver, ScenarioCellsMatchScalarBitwise) {
  // A non-default workload scenario (G/G/1 cs^2 and ca^2 plus the
  // failure/repair fold) threads through the SoA group constants; the
  // cold batch path must still be arithmetic-identical to the scalar
  // solver, cell by cell.
  SystemConfig base = make_config(8, 8);
  base.scenario.service_cv2 = 4.0;
  base.scenario.arrival_ca2 = 2.0;
  base.scenario.failure = FailureRepair{5e5, 2e3};

  std::vector<SystemConfig> configs;
  for (int i = 0; i < 12; ++i) {
    SystemConfig cell = base;
    cell.generation_rate_per_us = 1e-4 * static_cast<double>(i);
    configs.push_back(cell);
  }

  for (const SourceThrottling method :
       {SourceThrottling::kNone, SourceThrottling::kPicard,
        SourceThrottling::kBisection}) {
    ModelOptions options;
    options.fixed_point.method = method;
    const std::vector<LatencyPrediction> batch =
        predict_latency_batch(configs, options, BatchOptions{false});
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const LatencyPrediction scalar = predict_latency(configs[i], options);
      EXPECT_EQ(batch[i].mean_latency_us, scalar.mean_latency_us)
          << method_name(method) << " cell " << i;
      EXPECT_EQ(batch[i].lambda_effective, scalar.lambda_effective);
      EXPECT_EQ(batch[i].total_queue_length, scalar.total_queue_length);
      EXPECT_EQ(batch[i].fixed_point_iterations,
                scalar.fixed_point_iterations);
    }
  }
}

TEST(BatchSolver, MmppCellsResolvePerCellArrivalScv) {
  // The MMPP effective ca^2 is rate-dependent, so the batch solver must
  // resolve it per cell — matching the scalar path at every rate.
  SystemConfig base = make_config(4, 8);
  base.scenario.mmpp = MmppArrivals{6.0, 0.15, 5e3};

  std::vector<SystemConfig> configs;
  for (int i = 0; i < 10; ++i) {
    SystemConfig cell = base;
    cell.generation_rate_per_us = 5e-5 * static_cast<double>(i);
    configs.push_back(cell);
  }

  const std::vector<LatencyPrediction> batch =
      predict_latency_batch(configs, ModelOptions{}, BatchOptions{false});
  ASSERT_EQ(batch.size(), configs.size());
  double previous_scv = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const LatencyPrediction scalar = predict_latency(configs[i]);
    EXPECT_EQ(batch[i].mean_latency_us, scalar.mean_latency_us) << i;
    EXPECT_EQ(batch[i].lambda_effective, scalar.lambda_effective) << i;
    // And the per-cell SCV really varies across the grid.
    const double scv = mmpp_arrival_scv(*base.scenario.mmpp,
                                        configs[i].generation_rate_per_us);
    if (i > 1) {
      EXPECT_GT(scv, previous_scv) << i;
    }
    previous_scv = scv;
  }
}

TEST(BatchSolver, MvaRejectsNonProductFormScenarios) {
  // Exact MVA is product-form only: the batch path refuses the same
  // scenarios the scalar path refuses, rather than mispricing them.
  SystemConfig base = make_config(4, 4);
  base.scenario.service_cv2 = 2.0;
  base.generation_rate_per_us = 1e-4;
  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  std::vector<SystemConfig> configs{base};
  EXPECT_THROW(predict_latency_batch(configs, mva), hmcs::ConfigError);

  base.scenario = WorkloadScenario{};
  base.scenario.mmpp = MmppArrivals{};
  configs = {base};
  EXPECT_THROW(predict_latency_batch(configs, mva), hmcs::ConfigError);
}

TEST(BatchSolver, PredictBatchValidatesEveryCell) {
  SystemConfig bad = make_config(4, 4);
  bad.generation_rate_per_us = -1.0;
  std::vector<SystemConfig> configs{make_config(4, 4), bad};
  EXPECT_THROW(predict_latency_batch(configs), hmcs::ConfigError);
}

// ---------------------------------------------------------------------
// Cancellation: the batch solvers poll FixedPointOptions::cancel like
// their scalar counterparts, so per-cell deadlines bound even
// population-2^20 MVA batches.

TEST(BatchSolver, CancelledTokenUnwindsTheLockstepSolvers) {
  RateGrid grid;
  grid.base = make_config(16, 8);
  grid.rates_per_us = dense_rates();
  hmcs::util::CancelToken token;
  token.cancel();
  for (const SourceThrottling method :
       {SourceThrottling::kPicard, SourceThrottling::kBisection,
        SourceThrottling::kExactMva}) {
    FixedPointOptions options;
    options.method = method;
    options.cancel = &token;
    EXPECT_THROW(solve_effective_rate_batch(grid, options), hmcs::Cancelled)
        << method_name(method);
  }
}

TEST(BatchSolver, DeadlineBoundsTheMvaBatch) {
  RateGrid grid;
  grid.base = make_config(1024, 1024);  // total_nodes = 2^20
  grid.rates_per_us = {1e-4, 2e-4, 3e-4};
  hmcs::util::CancelToken token;
  token.set_deadline_after_ms(1e-6);
  FixedPointOptions options;
  options.method = SourceThrottling::kExactMva;
  options.cancel = &token;
  EXPECT_THROW(solve_effective_rate_batch(grid, options),
               hmcs::DeadlineExceeded);
}

}  // namespace
