// The figure-regeneration harness: sweep construction, table/CSV output,
// and the qualitative shape criteria of the paper's figures evaluated on
// an analysis-only run (fast) plus one simulated point.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "hmcs/experiment/figure_experiment.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::experiment;

FigureSpec analysis_only(FigureSpec spec) {
  spec.run_simulation = false;
  return spec;
}

TEST(FigureExperiment, SpecsCoverTheFourFigures) {
  EXPECT_EQ(figure4_spec().architecture,
            analytic::NetworkArchitecture::kNonBlocking);
  EXPECT_EQ(figure4_spec().hetero, analytic::HeterogeneityCase::kCase1);
  EXPECT_EQ(figure5_spec().hetero, analytic::HeterogeneityCase::kCase2);
  EXPECT_EQ(figure6_spec().architecture,
            analytic::NetworkArchitecture::kBlocking);
  EXPECT_EQ(figure7_spec().hetero, analytic::HeterogeneityCase::kCase2);
  EXPECT_EQ(figure4_spec().total_nodes, 256u);
  ASSERT_EQ(figure4_spec().message_sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(figure4_spec().message_sizes[0], 1024.0);
}

TEST(FigureExperiment, SweepProducesPointPerClusterAndSize) {
  const FigureResult result = run_figure(analysis_only(figure4_spec()));
  EXPECT_EQ(result.points.size(), 9u * 2u);
  // Cluster-major, size-minor ordering.
  EXPECT_EQ(result.points[0].clusters, 1u);
  EXPECT_DOUBLE_EQ(result.points[0].message_bytes, 1024.0);
  EXPECT_DOUBLE_EQ(result.points[1].message_bytes, 512.0);
  EXPECT_EQ(result.points[2].clusters, 2u);
  for (const FigurePoint& point : result.points) {
    EXPECT_GT(point.analysis_ms, 0.0);
    EXPECT_DOUBLE_EQ(point.simulation_ms, 0.0);  // analysis only
  }
}

TEST(FigureExperiment, LargerMessagesSlowerAtEveryPoint) {
  for (const auto& spec : {figure4_spec(), figure5_spec(), figure6_spec(),
                           figure7_spec()}) {
    const FigureResult result = run_figure(analysis_only(spec));
    for (std::size_t i = 0; i < result.points.size(); i += 2) {
      EXPECT_GT(result.points[i].analysis_ms,
                result.points[i + 1].analysis_ms)
          << spec.id << " C=" << result.points[i].clusters;
    }
  }
}

TEST(FigureExperiment, BlockingFiguresDominateNonBlockingOnes) {
  const FigureResult fig4 = run_figure(analysis_only(figure4_spec()));
  const FigureResult fig6 = run_figure(analysis_only(figure6_spec()));
  for (std::size_t i = 0; i < fig4.points.size(); ++i) {
    EXPECT_GT(fig6.points[i].analysis_ms, fig4.points[i].analysis_ms);
  }
}

TEST(FigureExperiment, CustomSweepAndRateAreHonoured) {
  FigureSpec spec = analysis_only(figure5_spec());
  spec.cluster_counts = {2, 8};
  spec.message_sizes = {256.0};
  spec.rate_per_us = 1e-6;
  const FigureResult result = run_figure(spec);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].clusters, 2u);
  EXPECT_EQ(result.points[1].clusters, 8u);
  // Near-zero load: latency close to the pure service path (< 1 ms).
  EXPECT_LT(result.points[0].analysis_ms, 1.0);
}

TEST(FigureExperiment, SimulatedRunReportsAgreement) {
  FigureSpec spec = figure4_spec();
  spec.cluster_counts = {4};
  spec.message_sizes = {512.0};
  spec.total_nodes = 64;
  spec.sim_options.measured_messages = 4000;
  spec.sim_options.warmup_messages = 400;
  spec.model_options.fixed_point.method =
      analytic::SourceThrottling::kExactMva;
  const FigureResult result = run_figure(spec);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_GT(result.points[0].simulation_ms, 0.0);
  EXPECT_GT(result.points[0].simulation_ci_half_ms, 0.0);
  EXPECT_LT(result.points[0].relative_error, 0.15);
  EXPECT_DOUBLE_EQ(result.mean_relative_error,
                   result.points[0].relative_error);
  EXPECT_DOUBLE_EQ(result.max_relative_error,
                   result.points[0].relative_error);
}

TEST(FigureExperiment, TableRendersEveryCluster) {
  const FigureResult result = run_figure(analysis_only(figure4_spec()));
  const std::string table = render_figure_table(result);
  // Cells are right-aligned, so match " <value> |" boundaries.
  for (const char* cluster : {" 1 |", " 16 |", " 256 |"}) {
    EXPECT_NE(table.find(cluster), std::string::npos) << cluster;
  }
  EXPECT_NE(table.find("Analysis M=1024"), std::string::npos);
  // No simulation columns on an analysis-only run.
  EXPECT_EQ(table.find("Simulation"), std::string::npos);
}

TEST(FigureExperiment, CsvHasHeaderAndAllRows) {
  const FigureResult result = run_figure(analysis_only(figure4_spec()));
  const std::string csv = figure_csv(result).to_string();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1u + result.points.size());
  EXPECT_EQ(csv.rfind("clusters,message_bytes,analysis_ms", 0), 0u);
}

TEST(FigureExperiment, ReportRendersChartsAndWritesFiles) {
  FigureSpec spec = analysis_only(figure4_spec());
  spec.cluster_counts = {2, 8, 32};
  const FigureResult result = run_figure(spec);

  std::ostringstream os;
  const std::string dir = ::testing::TempDir();
  print_figure_report(os, result, dir, dir);
  const std::string report = os.str();
  // Heading, table, one chart per message size, legend.
  EXPECT_NE(report.find("Figure 4"), std::string::npos);
  EXPECT_NE(report.find("M = 1024 bytes:"), std::string::npos);
  EXPECT_NE(report.find("M = 512 bytes:"), std::string::npos);
  EXPECT_NE(report.find("* = analysis"), std::string::npos);
  EXPECT_NE(report.find("series written to"), std::string::npos);
  EXPECT_NE(report.find("record written to"), std::string::npos);

  std::ifstream csv(dir + "/fig4.csv");
  EXPECT_TRUE(csv.good());
  std::ifstream json(dir + "/fig4.json");
  EXPECT_TRUE(json.good());
  std::string json_text((std::istreambuf_iterator<char>(json)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(json_text.rfind("{\"id\":\"fig4\"", 0), 0u);
  std::remove((dir + "/fig4.csv").c_str());
  std::remove((dir + "/fig4.json").c_str());
}

TEST(FigureExperiment, RejectsEmptyMessageSizes) {
  FigureSpec spec = figure4_spec();
  spec.message_sizes.clear();
  EXPECT_THROW(run_figure(spec), ConfigError);
}

}  // namespace
