// Shortest-path routing tables over wired topology instances.

#include <gtest/gtest.h>

#include "hmcs/netsim/routing.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/topology/switch_tree.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::netsim::RoutingTable;
using hmcs::topology::FatTree;
using hmcs::topology::Graph;
using hmcs::topology::LinearArray;
using hmcs::topology::NodeId;
using hmcs::topology::NodeKind;

TEST(Routing, ChainPathsAreTheUniquePath) {
  const LinearArray chain(48, 24);  // endpoints 0..47, switches 48,49
  const RoutingTable routes(chain.build_graph());
  // Same switch: one hop.
  EXPECT_EQ(routes.switch_hops(0, 1), 1u);
  // Across the chain: both switches.
  const auto path = routes.switch_path(0, 47);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 48u);
  EXPECT_EQ(path[1], 49u);
  // Hop counts match the topology's own closed form.
  for (const std::uint64_t src : {0ULL, 10ULL, 30ULL}) {
    for (const std::uint64_t dst : {5ULL, 25ULL, 47ULL}) {
      if (src == dst) continue;
      EXPECT_EQ(routes.switch_hops(static_cast<NodeId>(src),
                                   static_cast<NodeId>(dst)),
                chain.switch_traversals(src, dst));
    }
  }
}

TEST(Routing, FatTreePathsMatchMeetStageFormula) {
  const FatTree tree(64, 8);  // d = 3
  const RoutingTable routes(tree.build_graph());
  std::uint32_t worst = 0;
  for (std::uint64_t src = 0; src < 64; src += 5) {
    for (std::uint64_t dst = 0; dst < 64; dst += 7) {
      if (src == dst) continue;
      const auto hops = routes.switch_hops(static_cast<NodeId>(src),
                                           static_cast<NodeId>(dst));
      // BFS finds a minimal route; it can never beat the meet-stage
      // bound and the butterfly wiring achieves it.
      EXPECT_EQ(hops, tree.switch_traversals(src, dst))
          << src << "->" << dst;
      worst = std::max(worst, hops);
    }
  }
  EXPECT_EQ(worst, tree.worst_case_traversals());
}

TEST(Routing, SwitchTreePathsGoThroughAncestor) {
  const hmcs::topology::SwitchTree tree(3, 2);
  const RoutingTable routes(tree.build_graph());
  EXPECT_EQ(routes.switch_hops(0, 1), 1u);
  EXPECT_EQ(routes.switch_hops(0, 7), 5u);  // across the root
}

TEST(Routing, PathsAreSymmetricInLength) {
  const FatTree tree(32, 8);
  const RoutingTable routes(tree.build_graph());
  for (NodeId a = 0; a < 32; a += 3) {
    for (NodeId b = 0; b < 32; b += 5) {
      EXPECT_EQ(routes.switch_hops(a, b), routes.switch_hops(b, a));
    }
  }
}

TEST(Routing, SelfPathIsEmpty) {
  const LinearArray chain(8, 4);
  const RoutingTable routes(chain.build_graph());
  EXPECT_TRUE(routes.switch_path(3, 3).empty());
  EXPECT_EQ(routes.switch_hops(3, 3), 0u);
}

TEST(Routing, DeterministicTieBreaks) {
  const FatTree tree(16, 8);
  const RoutingTable a(tree.build_graph());
  const RoutingTable b(tree.build_graph());
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      EXPECT_EQ(a.switch_path(src, dst), b.switch_path(src, dst));
    }
  }
}

TEST(Routing, RejectsDisconnectedGraphs) {
  Graph g;
  const NodeId e0 = g.add_node(NodeKind::kEndpoint, 0, 0);
  const NodeId e1 = g.add_node(NodeKind::kEndpoint, 0, 1);
  const NodeId s0 = g.add_node(NodeKind::kSwitch, 1, 0);
  const NodeId s1 = g.add_node(NodeKind::kSwitch, 1, 1);
  g.add_link(e0, s0);
  g.add_link(e1, s1);  // two islands
  EXPECT_THROW(RoutingTable{g}, hmcs::ConfigError);
}

TEST(Routing, RejectsOutOfRangeNodes) {
  const LinearArray chain(8, 4);
  const RoutingTable routes(chain.build_graph());
  EXPECT_THROW(routes.switch_path(0, 99), hmcs::ConfigError);
}

}  // namespace
