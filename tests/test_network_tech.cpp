#include <gtest/gtest.h>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

TEST(NetworkTech, Table2GigabitEthernet) {
  const NetworkTechnology ge = gigabit_ethernet();
  EXPECT_EQ(ge.name, "Gigabit Ethernet");
  EXPECT_DOUBLE_EQ(ge.latency_us, 80.0);
  EXPECT_DOUBLE_EQ(ge.bandwidth_bytes_per_us, 94.0);
}

TEST(NetworkTech, Table2FastEthernet) {
  const NetworkTechnology fe = fast_ethernet();
  EXPECT_DOUBLE_EQ(fe.latency_us, 50.0);
  EXPECT_DOUBLE_EQ(fe.bandwidth_bytes_per_us, 10.5);
}

TEST(NetworkTech, ByteTimeIsInverseBandwidth) {
  EXPECT_DOUBLE_EQ(gigabit_ethernet().byte_time_us(), 1.0 / 94.0);
  EXPECT_DOUBLE_EQ(fast_ethernet().byte_time_us(), 1.0 / 10.5);
}

TEST(NetworkTech, TransmissionTimeEq10) {
  // eq. (10): T = alpha + M*beta. FE at 1024 bytes: 50 + 1024/10.5.
  EXPECT_NEAR(fast_ethernet().transmission_time_us(1024.0),
              50.0 + 1024.0 / 10.5, 1e-9);
  EXPECT_NEAR(gigabit_ethernet().transmission_time_us(512.0),
              80.0 + 512.0 / 94.0, 1e-9);
}

TEST(NetworkTech, FasterTechnologiesAvailableForExploration) {
  EXPECT_GT(myrinet().bandwidth_bytes_per_us,
            gigabit_ethernet().bandwidth_bytes_per_us);
  EXPECT_LT(myrinet().latency_us, fast_ethernet().latency_us);
  EXPECT_GT(infiniband().bandwidth_bytes_per_us,
            myrinet().bandwidth_bytes_per_us);
}

TEST(NetworkTech, ValidationRejectsNonsense) {
  EXPECT_NO_THROW(validate(gigabit_ethernet()));
  EXPECT_THROW(validate({"", 1.0, 1.0}), hmcs::ConfigError);
  EXPECT_THROW(validate({"x", -1.0, 1.0}), hmcs::ConfigError);
  EXPECT_THROW(validate({"x", 1.0, 0.0}), hmcs::ConfigError);
  EXPECT_THROW(validate({"x", 1.0, -5.0}), hmcs::ConfigError);
}

}  // namespace
