// Property sweep: structural invariants of the analytical model across
// the full configuration grid (scenario x architecture x cluster count),
// for both the paper's fixed point and the exact-MVA solver.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "hmcs/analytic/bounds.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"

namespace {

using namespace hmcs::analytic;

struct GridCase {
  HeterogeneityCase hetero;
  NetworkArchitecture architecture;
  std::uint32_t clusters;
};

class ModelProperties : public ::testing::TestWithParam<GridCase> {
 protected:
  SystemConfig config(double bytes = 1024.0,
                      double rate = kPaperRatePerUs) const {
    const GridCase& grid = GetParam();
    return paper_scenario(grid.hetero, grid.clusters, grid.architecture,
                          bytes, kPaperTotalNodes, rate);
  }

  static ModelOptions options(SourceThrottling method) {
    ModelOptions out;
    out.fixed_point.method = method;
    return out;
  }
};

TEST_P(ModelProperties, ProbabilityAndRatesAreSane) {
  for (const auto method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    const LatencyPrediction prediction =
        predict_latency(config(), options(method));
    EXPECT_GE(prediction.inter_cluster_probability, 0.0);
    EXPECT_LE(prediction.inter_cluster_probability, 1.0);
    EXPECT_GT(prediction.lambda_effective, 0.0);
    EXPECT_LE(prediction.lambda_effective,
              prediction.lambda_offered * (1.0 + 1e-9));
    EXPECT_TRUE(prediction.fixed_point_converged);
    EXPECT_TRUE(std::isfinite(prediction.mean_latency_us));
    EXPECT_GT(prediction.mean_latency_us, 0.0);
  }
}

TEST_P(ModelProperties, UtilizationsBelowOneAtTheFixedPoint) {
  for (const auto method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    const LatencyPrediction prediction =
        predict_latency(config(), options(method));
    for (const CenterPrediction* center :
         {&prediction.icn1, &prediction.ecn1, &prediction.icn2}) {
      EXPECT_GE(center->utilization, 0.0);
      EXPECT_LT(center->utilization, 1.0 + 1e-9);
    }
  }
}

TEST_P(ModelProperties, LatencyAtLeastTheNoLoadDemand) {
  const AsymptoticBounds bounds = compute_bounds(config());
  for (const auto method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    const LatencyPrediction prediction =
        predict_latency(config(), options(method));
    EXPECT_GE(prediction.mean_latency_us,
              bounds.total_demand_us * (1.0 - 1e-9));
  }
}

TEST_P(ModelProperties, MvaRespectsTheFullEnvelope) {
  const AsymptoticBounds bounds = compute_bounds(config());
  const LatencyPrediction prediction =
      predict_latency(config(), options(SourceThrottling::kExactMva));
  EXPECT_GE(prediction.mean_latency_us, bounds.latency_lower_us * 0.999);
  EXPECT_LE(prediction.lambda_effective,
            bounds.throughput_upper_per_us * 1.001);
}

TEST_P(ModelProperties, LatencyMonotoneInOfferedRate) {
  for (const auto method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    double previous = 0.0;
    for (const double rate_per_s : {1.0, 10.0, 50.0, 250.0, 1000.0}) {
      const LatencyPrediction prediction = predict_latency(
          config(1024.0, rate_per_s * 1e-6), options(method));
      EXPECT_GE(prediction.mean_latency_us, previous * (1.0 - 1e-9))
          << "rate " << rate_per_s;
      previous = prediction.mean_latency_us;
    }
  }
}

TEST_P(ModelProperties, LatencyMonotoneInMessageSize) {
  double previous = 0.0;
  for (const double bytes : {128.0, 512.0, 1024.0, 4096.0}) {
    const LatencyPrediction prediction = predict_latency(
        config(bytes), options(SourceThrottling::kExactMva));
    EXPECT_GT(prediction.mean_latency_us, previous);
    previous = prediction.mean_latency_us;
  }
}

TEST_P(ModelProperties, EffectiveRateMonotoneInOfferedRate) {
  double previous = 0.0;
  for (const double rate_per_s : {1.0, 10.0, 100.0, 1000.0}) {
    const LatencyPrediction prediction = predict_latency(
        config(1024.0, rate_per_s * 1e-6),
        options(SourceThrottling::kExactMva));
    EXPECT_GE(prediction.lambda_effective, previous * (1.0 - 1e-12));
    previous = prediction.lambda_effective;
  }
}

TEST_P(ModelProperties, Eq15Reassembles) {
  const LatencyPrediction prediction =
      predict_latency(config(), options(SourceThrottling::kBisection));
  const double p = prediction.inter_cluster_probability;
  double expected = 0.0;
  if (p < 1.0) expected += (1.0 - p) * prediction.icn1.response_time_us;
  if (p > 0.0) {
    expected += p * (prediction.icn2.response_time_us +
                     2.0 * prediction.ecn1.response_time_us);
  }
  EXPECT_NEAR(prediction.mean_latency_us, expected,
              1e-9 * prediction.mean_latency_us + 1e-12);
}

TEST_P(ModelProperties, SlowerSwitchesNeverHelp) {
  SystemConfig slow = config();
  slow.switch_params.latency_us = 50.0;
  const double base =
      predict_latency(config(), options(SourceThrottling::kExactMva))
          .mean_latency_us;
  const double slowed =
      predict_latency(slow, options(SourceThrottling::kExactMva))
          .mean_latency_us;
  EXPECT_GE(slowed, base * (1.0 - 1e-9));
}

TEST_P(ModelProperties, BlockedSourceThrottleConsistent) {
  // lambda_eff/lambda == (N - L)/N at the reported solution (eq. 7).
  const LatencyPrediction prediction =
      predict_latency(config(), options(SourceThrottling::kBisection));
  const double n = static_cast<double>(config().total_nodes());
  EXPECT_NEAR(prediction.lambda_effective / prediction.lambda_offered,
              (n - prediction.total_queue_length) / n, 1e-3);
}

std::string grid_label(const ::testing::TestParamInfo<GridCase>& param_info) {
  const GridCase& grid = param_info.param;
  std::string label =
      grid.hetero == HeterogeneityCase::kCase1 ? "case1" : "case2";
  label += grid.architecture == NetworkArchitecture::kNonBlocking
               ? "_fattree"
               : "_chain";
  label += "_C" + std::to_string(grid.clusters);
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelProperties,
    ::testing::Values(
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 1},
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 2},
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 16},
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kNonBlocking, 256},
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kBlocking, 4},
        GridCase{HeterogeneityCase::kCase1, NetworkArchitecture::kBlocking, 64},
        GridCase{HeterogeneityCase::kCase2, NetworkArchitecture::kNonBlocking, 2},
        GridCase{HeterogeneityCase::kCase2, NetworkArchitecture::kNonBlocking, 32},
        GridCase{HeterogeneityCase::kCase2, NetworkArchitecture::kBlocking, 8},
        GridCase{HeterogeneityCase::kCase2, NetworkArchitecture::kBlocking, 128}),
    grid_label);

}  // namespace
