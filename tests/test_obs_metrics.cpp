// The observability metrics registry: lock-free cells, stable handles,
// snapshots, and the registration macros.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;

TEST(ObsMetrics, CounterStartsAtZeroAndAdds) {
  obs::Registry registry;
  obs::Counter* counter = registry.counter("a.b.c");
  EXPECT_EQ(counter->value(), 0u);
  counter->inc();
  counter->inc(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(ObsMetrics, SameNameReturnsSameCell) {
  obs::Registry registry;
  EXPECT_EQ(registry.counter("x"), registry.counter("x"));
  EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsMetrics, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("dual");
  EXPECT_THROW(registry.gauge("dual"), ConfigError);
  EXPECT_THROW(registry.stat("dual"), ConfigError);
  EXPECT_THROW(registry.timer("dual"), ConfigError);
  EXPECT_THROW(registry.counter(""), ConfigError);
}

TEST(ObsMetrics, ConcurrentIncrementsSumExactly) {
  obs::Registry registry;
  obs::Counter* counter = registry.counter("concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter->inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(ObsMetrics, HandlesStayValidAcrossSnapshotAndGrowth) {
  obs::Registry registry;
  obs::Counter* early = registry.counter("early");
  early->inc(7);
  const obs::MetricsSnapshot first = registry.snapshot();
  ASSERT_NE(first.find_counter("early"), nullptr);
  EXPECT_EQ(first.find_counter("early")->value, 7u);

  // Register enough new metrics to force the storage to grow; the old
  // handle must keep pointing at the same live cell.
  for (int i = 0; i < 1000; ++i) {
    registry.counter("growth." + std::to_string(i))->inc();
  }
  early->inc(3);
  const obs::MetricsSnapshot second = registry.snapshot();
  EXPECT_EQ(second.find_counter("early")->value, 10u);
  EXPECT_EQ(registry.counter("early"), early);
}

TEST(ObsMetrics, StatTracksMoments) {
  obs::Registry registry;
  obs::Stat* stat = registry.stat("s");
  stat->observe(2.0);
  stat->observe(-1.0);
  stat->observe(5.0);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* row = snapshot.find_stat("s");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 3u);
  EXPECT_DOUBLE_EQ(row->sum, 6.0);
  EXPECT_DOUBLE_EQ(row->min, -1.0);
  EXPECT_DOUBLE_EQ(row->max, 5.0);
}

TEST(ObsMetrics, ConcurrentStatMinMaxConverge) {
  obs::Registry registry;
  obs::Stat* stat = registry.stat("minmax");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([stat, t] {
      for (int i = 0; i < 10000; ++i) {
        stat->observe(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* row = snapshot.find_stat("minmax");
  EXPECT_EQ(row->count, 40000u);
  EXPECT_DOUBLE_EQ(row->min, 0.0);
  EXPECT_DOUBLE_EQ(row->max, 39999.0);
}

TEST(ObsMetrics, TimerObservesDurations) {
  obs::Registry registry;
  obs::Timer* timer = registry.timer("t");
  timer->observe_ns(100);
  timer->observe_ns(1000000);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const auto* row = snapshot.find_timer("t");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 2u);
  EXPECT_EQ(row->total_ns, 1000100u);
  EXPECT_EQ(row->min_ns, 100u);
  EXPECT_EQ(row->max_ns, 1000000u);
}

TEST(ObsMetrics, ScopedTimerRecordsSomethingPositive) {
  obs::Registry registry;
  obs::Timer* timer = registry.timer("scope");
  { obs::ScopedTimer scope(timer); }
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_timer("scope")->count, 1u);
}

TEST(ObsMetrics, ResetValuesKeepsRegistrations) {
  obs::Registry registry;
  registry.counter("c")->inc(5);
  registry.gauge("g")->set(1.5);
  registry.stat("s")->observe(3.0);
  registry.reset_values();
  EXPECT_EQ(registry.size(), 3u);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.find_counter("c")->value, 0u);
  EXPECT_DOUBLE_EQ(snapshot.find_gauge("g")->value, 0.0);
  EXPECT_EQ(snapshot.find_stat("s")->count, 0u);
}

TEST(ObsMetrics, MacrosRegisterInGlobalRegistry) {
  static_assert(obs::kEnabled, "this test binary builds with obs enabled");
  HMCS_OBS_COUNTER_INC("test.macros.counter");
  HMCS_OBS_COUNTER_ADD("test.macros.counter", 2);
  HMCS_OBS_GAUGE_SET("test.macros.gauge", 2.5);
  HMCS_OBS_STAT_OBSERVE("test.macros.stat", 4.0);
  { HMCS_OBS_TIMER_SCOPE("test.macros.timer"); }
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  ASSERT_NE(snapshot.find_counter("test.macros.counter"), nullptr);
  EXPECT_EQ(snapshot.find_counter("test.macros.counter")->value, 3u);
  EXPECT_DOUBLE_EQ(snapshot.find_gauge("test.macros.gauge")->value, 2.5);
  EXPECT_EQ(snapshot.find_stat("test.macros.stat")->count, 1u);
  EXPECT_EQ(snapshot.find_timer("test.macros.timer")->count, 1u);
}

}  // namespace
