// Recursive model trees: lowering round-trips, bit-identical flat
// dispatch, generic-recursion agreement, uniform-tree MVA, node-path
// targeting, and the nested JSON schema.

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/serialize.hpp"
#include "hmcs/analytic/tree_io.hpp"
#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

/// A genuinely three-level topology: a fast-ethernet backbone over two
/// campuses, each a gigabit spine over heterogeneous leaf groups.
ModelTree nested_tree() {
  ModelNode campus_a = ModelNode::internal(
      gigabit_ethernet(), fast_ethernet(),
      {ModelNode::leaf(16, 1e-4), ModelNode::leaf(8, 0.5e-4)}, "campus-a");
  ModelNode campus_b = ModelNode::internal(
      gigabit_ethernet(), fast_ethernet(),
      {ModelNode::leaf(32, 0.75e-4)}, "campus-b");
  ModelTree tree;
  tree.root = ModelNode::internal(fast_ethernet(), {campus_a, campus_b});
  tree.switch_params = {24, 10.0};
  tree.message_bytes = 1024.0;
  return tree;
}

/// Depth-3 with every internal node's children identical: exchangeable
/// processors, the exact station-class MVA precondition.
ModelTree uniform_depth3_tree(std::uint32_t groups = 2,
                              std::uint32_t leaves_per_group = 2,
                              std::uint32_t procs = 8,
                              double rate = 1e-4) {
  std::vector<ModelNode> leaves(leaves_per_group,
                                ModelNode::leaf(procs, rate));
  ModelNode group =
      ModelNode::internal(gigabit_ethernet(), fast_ethernet(),
                          {leaves.begin(), leaves.end()});
  ModelTree tree;
  tree.root = ModelNode::internal(
      fast_ethernet(), std::vector<ModelNode>(groups, group));
  tree.switch_params = {24, 10.0};
  return tree;
}

TEST(ModelTree, FromSystemRoundTripsThroughAsSystemConfig) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase2, 8, NetworkArchitecture::kBlocking, 512.0);
  const ModelTree tree = ModelTree::from_system(config);
  EXPECT_EQ(tree.total_processors(), config.total_nodes());
  EXPECT_EQ(tree.depth(), 2u);

  const auto back = tree.as_system_config();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->clusters, config.clusters);
  EXPECT_EQ(back->nodes_per_cluster, config.nodes_per_cluster);
  EXPECT_EQ(back->icn1.name, config.icn1.name);
  EXPECT_EQ(back->ecn1.bandwidth_bytes_per_us,
            config.ecn1.bandwidth_bytes_per_us);
  EXPECT_EQ(back->icn2.latency_us, config.icn2.latency_us);
  EXPECT_EQ(back->architecture, config.architecture);
  EXPECT_EQ(back->message_bytes, config.message_bytes);
  EXPECT_EQ(back->generation_rate_per_us, config.generation_rate_per_us);
}

TEST(ModelTree, FromClusterOfClustersRoundTrips) {
  ClusterOfClustersConfig config;
  ClusterSpec fast{32, gigabit_ethernet(), fast_ethernet(), 1e-4};
  ClusterSpec slow{8, fast_ethernet(), fast_ethernet(), 0.5e-4};
  config.clusters = {fast, slow};
  config.icn2 = fast_ethernet();
  config.switch_params = {24, 10.0};
  config.message_bytes = 1024.0;

  const ModelTree tree = ModelTree::from_cluster_of_clusters(config);
  EXPECT_EQ(tree.total_processors(), 40u);
  // Heterogeneous children: not a SystemConfig, still a CoC shape.
  EXPECT_FALSE(tree.as_system_config().has_value());
  const auto back = tree.as_cluster_of_clusters();
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->clusters.size(), 2u);
  EXPECT_EQ(back->clusters[0].nodes, 32u);
  EXPECT_EQ(back->clusters[1].generation_rate_per_us, 0.5e-4);
  EXPECT_EQ(back->icn2.name, config.icn2.name);
}

TEST(ModelTree, NestedTreeDoesNotLower) {
  const ModelTree tree = nested_tree();
  // Two network levels, but campus-a joins two leaf groups: neither the
  // flat HMCS nor the Cluster-of-Clusters shape can express it.
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_FALSE(tree.as_system_config().has_value());
  EXPECT_FALSE(tree.as_cluster_of_clusters().has_value());
}

TEST(ModelTree, ThreeNetworkLevelsSolve) {
  // root -> region -> rack -> leaves: one level deeper than anything the
  // flat pipeline can express.
  ModelNode rack = ModelNode::internal(
      gigabit_ethernet(), gigabit_ethernet(),
      {ModelNode::leaf(8, 1e-4), ModelNode::leaf(8, 1e-4)}, "rack");
  ModelNode region = ModelNode::internal(
      gigabit_ethernet(), fast_ethernet(), {rack, rack}, "region");
  ModelTree tree;
  tree.root = ModelNode::internal(fast_ethernet(), {region, region});
  tree.switch_params = {24, 10.0};
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.total_processors(), 64u);
  EXPECT_TRUE(is_uniform_tree(tree));

  for (const SourceThrottling method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    TreeModelOptions options;
    options.fixed_point.method = method;
    const TreeLatencyPrediction prediction =
        predict_model_tree(tree, options);
    EXPECT_TRUE(prediction.fixed_point_converged);
    EXPECT_TRUE(std::isfinite(prediction.mean_latency_us));
    EXPECT_GT(prediction.mean_latency_us, 0.0);
    // 1 root icn + 2 x (region icn+egress) + 4 x (rack icn+egress).
    EXPECT_EQ(prediction.centers.size(), 13u);
    ASSERT_EQ(prediction.per_leaf_latency_us.size(), 8u);
    for (const double per_leaf : prediction.per_leaf_latency_us) {
      EXPECT_NEAR(per_leaf, prediction.per_leaf_latency_us[0],
                  1e-9 * prediction.per_leaf_latency_us[0]);
    }
  }
}

TEST(ModelTree, FlatShapeBitIdenticalAcrossFigureGrids) {
  // The exact-lowering dispatch must reproduce the scalar pipeline
  // bit-for-bit on the pinned figure grids, for every throttling method.
  for (const SourceThrottling method :
       {SourceThrottling::kNone, SourceThrottling::kPicard,
        SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    for (const std::uint32_t clusters : {1u, 2u, 4u, 8u, 16u}) {
      for (const double bytes : {512.0, 1024.0}) {
        const SystemConfig config =
            paper_scenario(HeterogeneityCase::kCase1, clusters,
                           NetworkArchitecture::kNonBlocking, bytes);
        ModelOptions scalar;
        scalar.fixed_point.method = method;
        const LatencyPrediction expected = predict_latency(config, scalar);

        TreeModelOptions options;
        options.fixed_point = scalar.fixed_point;
        const TreeLatencyPrediction actual =
            predict_model_tree(ModelTree::from_system(config), options);

        EXPECT_TRUE(actual.lowered_to_flat);
        EXPECT_EQ(actual.mean_latency_us, expected.mean_latency_us)
            << "method=" << static_cast<int>(method) << " C=" << clusters
            << " M=" << bytes;
        EXPECT_EQ(actual.lambda_offered_total,
                  expected.lambda_offered *
                      static_cast<double>(config.total_nodes()));
        EXPECT_EQ(actual.effective_rate_scale,
                  expected.lambda_offered > 0.0
                      ? expected.lambda_effective / expected.lambda_offered
                      : 1.0);
        EXPECT_EQ(actual.fixed_point_converged,
                  expected.fixed_point_converged);
        for (const double per_leaf : actual.per_leaf_latency_us) {
          EXPECT_EQ(per_leaf, expected.mean_latency_us);
        }
      }
    }
  }
}

TEST(ModelTree, GenericRecursionMatchesScalarToRounding) {
  // With exact lowering disabled the generic tree recursion must agree
  // with the scalar pipeline to numerical tolerance (the consistent
  // queue rule is the one the generalised arrival algebra reproduces).
  for (const std::uint32_t clusters : {2u, 4u, 8u}) {
    const SystemConfig config = paper_scenario(
        HeterogeneityCase::kCase1, clusters,
        NetworkArchitecture::kNonBlocking, 1024.0, 64, 1e-4);
    ModelOptions scalar;
    scalar.fixed_point.queue_rule = QueueLengthRule::kConsistent;
    const LatencyPrediction expected = predict_latency(config, scalar);

    TreeModelOptions options;
    options.fixed_point = scalar.fixed_point;
    options.exact_lowering = false;
    const TreeLatencyPrediction actual =
        predict_model_tree(ModelTree::from_system(config), options);

    EXPECT_FALSE(actual.lowered_to_flat);
    EXPECT_NEAR(actual.mean_latency_us, expected.mean_latency_us,
                1e-6 * expected.mean_latency_us)
        << "C=" << clusters;
    EXPECT_NEAR(actual.effective_rate_scale,
                expected.lambda_effective / expected.lambda_offered, 1e-6);
  }
}

TEST(ModelTree, UniformMvaMatchesScalarExactMva) {
  // Uniform flat shape through the generic station-class MVA path vs
  // the scalar exact MVA: same queueing network, same answer.
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking,
      1024.0, 128, 2e-4);
  ModelOptions scalar;
  scalar.fixed_point.method = SourceThrottling::kExactMva;
  const LatencyPrediction expected = predict_latency(config, scalar);

  TreeModelOptions options;
  options.fixed_point.method = SourceThrottling::kExactMva;
  options.exact_lowering = false;
  const TreeLatencyPrediction actual =
      predict_model_tree(ModelTree::from_system(config), options);
  EXPECT_NEAR(actual.mean_latency_us, expected.mean_latency_us,
              1e-6 * expected.mean_latency_us);
}

TEST(ModelTree, UniformDepth3TreeSolvesWithExactMva) {
  const ModelTree tree = uniform_depth3_tree();
  EXPECT_TRUE(is_uniform_tree(tree));

  TreeModelOptions options;
  options.fixed_point.method = SourceThrottling::kExactMva;
  const TreeLatencyPrediction prediction =
      predict_model_tree(tree, options);
  EXPECT_TRUE(prediction.fixed_point_converged);
  EXPECT_TRUE(std::isfinite(prediction.mean_latency_us));
  EXPECT_GT(prediction.mean_latency_us, 0.0);
  EXPECT_GT(prediction.effective_rate_scale, 0.0);
  EXPECT_LE(prediction.effective_rate_scale, 1.0 + 1e-12);
  // centers: root network + 2 x (group network + group egress).
  ASSERT_EQ(prediction.centers.size(), 5u);
  ASSERT_EQ(prediction.per_leaf_latency_us.size(), 4u);
  // Exchangeable leaves: identical per-leaf latencies.
  for (const double per_leaf : prediction.per_leaf_latency_us) {
    EXPECT_NEAR(per_leaf, prediction.per_leaf_latency_us[0],
                1e-9 * prediction.per_leaf_latency_us[0]);
  }
}

TEST(ModelTree, NestedTreeOpenAndAmvaSolve) {
  const ModelTree tree = nested_tree();
  EXPECT_FALSE(is_uniform_tree(tree));

  for (const SourceThrottling method :
       {SourceThrottling::kBisection, SourceThrottling::kExactMva}) {
    TreeModelOptions options;
    options.fixed_point.method = method;
    options.fixed_point.queue_rule = QueueLengthRule::kConsistent;
    const TreeLatencyPrediction prediction =
        predict_model_tree(tree, options);
    EXPECT_TRUE(prediction.fixed_point_converged)
        << "method=" << static_cast<int>(method);
    EXPECT_TRUE(std::isfinite(prediction.mean_latency_us));
    EXPECT_GT(prediction.mean_latency_us, 0.0);
    ASSERT_EQ(prediction.per_leaf_latency_us.size(), 3u);
    // The generation-weighted mean lies inside the per-leaf range.
    double lo = prediction.per_leaf_latency_us[0];
    double hi = lo;
    for (const double v : prediction.per_leaf_latency_us) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_GE(prediction.mean_latency_us, lo - 1e-12);
    EXPECT_LE(prediction.mean_latency_us, hi + 1e-12);
  }
}

TEST(ModelTree, FasterBackboneLowersLatency) {
  ModelTree slow = nested_tree();
  ModelTree fast = nested_tree();
  fast.root.network = gigabit_ethernet();
  const double slow_mean = predict_model_tree(slow).mean_latency_us;
  const double fast_mean = predict_model_tree(fast).mean_latency_us;
  EXPECT_LT(fast_mean, slow_mean);
}

TEST(ModelTree, PathTargetingReadsAndWrites) {
  ModelTree tree = nested_tree();
  EXPECT_EQ(tree_path_value(tree, "root.icn.bandwidth"),
            fast_ethernet().bandwidth_bytes_per_us);
  EXPECT_EQ(tree_path_value(tree, "root.children[0].egress.latency_us"),
            fast_ethernet().latency_us);
  EXPECT_EQ(tree_path_value(tree, "root.children[0].children[1].processors"),
            8.0);

  set_tree_path(tree, "root.children[1].icn.bandwidth", 250.0);
  EXPECT_EQ(tree.root.children[1].network.bandwidth_bytes_per_us, 250.0);
  set_tree_path(tree, "root.children[0].children[0].lambda_per_s", 500.0);
  EXPECT_NEAR(tree.root.children[0].children[0].generation_rate_per_us,
              5e-4, 1e-15);

  EXPECT_THROW(tree_path_value(tree, "root.children[9].icn.bandwidth"),
               hmcs::ConfigError);
  EXPECT_THROW(tree_path_value(tree, "root.egress.latency_us"),
               hmcs::ConfigError);  // the root has no egress
  EXPECT_THROW(tree_path_value(tree, "root.processors"),
               hmcs::ConfigError);  // internal node, leaf field
  EXPECT_THROW(set_tree_path(tree, "root.children[0].children[0].processors",
                             2.5),
               hmcs::ConfigError);  // non-integer processor count
  EXPECT_THROW(set_tree_path(tree, "nonsense", 1.0), hmcs::ConfigError);
}

TEST(ModelTree, Validation) {
  ModelTree tree;  // default root is a leaf
  EXPECT_THROW(tree.validate(), hmcs::ConfigError);

  tree = nested_tree();
  tree.root.children[0].children[0].processors = 0;
  EXPECT_THROW(tree.validate(), hmcs::ConfigError);

  tree = nested_tree();
  tree.root.children[0].children[0].generation_rate_per_us = -1.0;
  EXPECT_THROW(tree.validate(), hmcs::ConfigError);

  tree = nested_tree();
  tree.message_bytes = 0.0;
  EXPECT_THROW(predict_model_tree(tree), hmcs::ConfigError);
}

TEST(ModelTree, TreeIoParsesNestedSchema) {
  const ModelTree tree = load_model_tree(R"({
    "tree": {
      "network": "fast-ethernet",
      "children": [
        {"name": "campus-a",
         "network": "gigabit-ethernet", "egress": "fast-ethernet",
         "children": [{"processors": 16, "lambda_per_s": 100},
                      {"processors": 8, "lambda_per_s": 50}]},
        {"name": "campus-b",
         "network": "gigabit-ethernet", "egress": "fast-ethernet",
         "children": [{"processors": 32, "lambda_per_s": 75}]}
      ]
    },
    "message_bytes": 1024,
    "switch_ports": 24,
    "switch_latency_us": 10
  })");
  EXPECT_EQ(tree.total_processors(), 56u);
  EXPECT_EQ(tree.depth(), 2u);
  EXPECT_EQ(tree.root.children[0].name, "campus-a");
  EXPECT_EQ(tree.root.children[1].children[0].processors, 32u);
  EXPECT_NEAR(tree.root.children[0].children[0].generation_rate_per_us,
              1e-4, 1e-15);
}

TEST(ModelTree, TreeIoRejectsUnknownMembersAtEveryLevel) {
  // Top level.
  EXPECT_THROW(load_model_tree(
                   R"({"tree": {"network": "fast-ethernet",
                                "children": [{"processors": 2}]},
                       "bogus": 1})"),
               hmcs::ConfigError);
  // Internal node.
  EXPECT_THROW(load_model_tree(
                   R"({"tree": {"network": "fast-ethernet", "bogus": 1,
                                "children": [{"processors": 2}]}})"),
               hmcs::ConfigError);
  // Leaf.
  EXPECT_THROW(load_model_tree(
                   R"({"tree": {"network": "fast-ethernet",
                                "children": [{"processors": 2,
                                              "bogus": 1}]}})"),
               hmcs::ConfigError);
  // Root must not carry an egress.
  EXPECT_THROW(load_model_tree(
                   R"({"tree": {"network": "fast-ethernet",
                                "egress": "fast-ethernet",
                                "children": [{"processors": 2}]}})"),
               hmcs::ConfigError);
  // Non-root internal nodes must.
  EXPECT_THROW(load_model_tree(
                   R"({"tree": {"network": "fast-ethernet",
                                "children": [{"network": "fast-ethernet",
                                              "children": [{"processors": 2}]}]}})"),
               hmcs::ConfigError);
}

TEST(ModelTree, CanonicalWriterRoundTrips) {
  const ModelTree tree = nested_tree();
  const std::string first = to_json(tree);
  const ModelTree reparsed = load_model_tree(first);
  EXPECT_EQ(to_json(reparsed), first);
  // And the re-parsed tree predicts identically.
  EXPECT_EQ(predict_model_tree(reparsed).mean_latency_us,
            predict_model_tree(tree).mean_latency_us);
}

TEST(ModelTree, IsTreeConfigDiscriminates) {
  EXPECT_TRUE(is_tree_config(hmcs::parse_json(
      R"({"tree": {"network": "fast-ethernet",
                   "children": [{"processors": 2}]}})")));
  EXPECT_FALSE(is_tree_config(hmcs::parse_json(R"({"clusters": 4})")));
}

TEST(ModelTree, IsUniformTreeDetectsAsymmetry) {
  EXPECT_TRUE(is_uniform_tree(uniform_depth3_tree()));
  ModelTree tree = uniform_depth3_tree();
  tree.root.children[1].children[0].processors = 9;
  EXPECT_FALSE(is_uniform_tree(tree));
  tree = uniform_depth3_tree();
  tree.root.children[0].egress = gigabit_ethernet();
  EXPECT_FALSE(is_uniform_tree(tree));
}

TEST(ModelTree, FlattenExposesSubtreeAggregates) {
  // The view holds pointers into the tree: keep it alive.
  const ModelTree tree = nested_tree();
  const FlatTreeView view = flatten(tree);
  ASSERT_EQ(view.nodes.size(), 3u);  // root + two campuses
  ASSERT_EQ(view.leaves.size(), 3u);
  EXPECT_EQ(view.nodes[0].path, "root");
  EXPECT_EQ(view.total_processors, 56u);
  EXPECT_EQ(view.nodes[0].subtree_processors, 56u);
  // Root network joins two internal children -> 2 endpoints.
  EXPECT_EQ(view.nodes[0].attached_endpoints, 2u);
  // campus-a joins two leaf groups of 16 and 8 processors.
  EXPECT_EQ(view.nodes[1].attached_endpoints, 24u);

  const std::vector<TreeCenter> centers = tree_centers(tree, view);
  ASSERT_EQ(centers.size(), 5u);
  EXPECT_EQ(centers[0].path, "root.icn");
  EXPECT_EQ(centers[1].path, "root.children[0].icn");
  EXPECT_TRUE(centers[2].egress);
  EXPECT_EQ(centers[2].path, "root.children[0].egress");
}

}  // namespace
