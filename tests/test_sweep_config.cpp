// The sweep-config loader: JSON and key=value schemas, axis parsing,
// backend construction, unknown-key rejection, and the technology /
// model / architecture vocabularies.

#include <gtest/gtest.h>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using runner::SweepRunConfig;
using runner::sweep_config_from_json;
using runner::sweep_config_from_keyvalue;

TEST(SweepConfig, JsonFullDocument) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "id": "study",
    "title": "a study",
    "mode": "cartesian",
    "total_nodes": 64,
    "seed": 9,
    "threads": 4,
    "axes": {
      "clusters": [2, 4],
      "message_bytes": [256, 1024],
      "lambda_per_s": [250],
      "architecture": ["blocking"],
      "technology": ["case2"]
    },
    "backends": [
      {"type": "analytic", "model": "mva"},
      {"type": "des", "messages": 500, "warmup": 100, "replications": 2}
    ]
  })");
  EXPECT_EQ(config.spec.id, "study");
  EXPECT_EQ(config.spec.title, "a study");
  EXPECT_EQ(config.spec.total_nodes, 64u);
  EXPECT_EQ(config.spec.base_seed, 9u);
  EXPECT_EQ(config.threads, 4u);
  EXPECT_EQ(config.spec.axes.clusters, (std::vector<std::uint32_t>{2, 4}));
  ASSERT_EQ(config.spec.axes.lambda_per_us.size(), 1u);
  EXPECT_DOUBLE_EQ(config.spec.axes.lambda_per_us[0],
                   units::per_s_to_per_us(250.0));
  ASSERT_EQ(config.spec.axes.architectures.size(), 1u);
  EXPECT_EQ(config.spec.axes.architectures[0],
            analytic::NetworkArchitecture::kBlocking);
  ASSERT_EQ(config.spec.axes.technologies.size(), 1u);
  // Case 2 (Table 2): FE intra-cluster, GE everywhere else.
  EXPECT_EQ(config.spec.axes.technologies[0].icn1.name,
            analytic::fast_ethernet().name);
  EXPECT_EQ(config.spec.axes.technologies[0].ecn1.name,
            analytic::gigabit_ethernet().name);
  ASSERT_EQ(config.backends.size(), 2u);
  EXPECT_EQ(config.backends[0]->name(), "analytic");
  EXPECT_EQ(config.backends[1]->name(), "des");
}

TEST(SweepConfig, JsonDefaultsToAnalyticOnly) {
  const SweepRunConfig config = sweep_config_from_json(R"({"id": "s"})");
  ASSERT_EQ(config.backends.size(), 1u);
  EXPECT_EQ(config.backends[0]->name(), "analytic");
  EXPECT_EQ(config.threads, 0u);
  EXPECT_TRUE(config.spec.axes.clusters.empty());  // paper sweep default
}

TEST(SweepConfig, JsonTechnologyObjectAndPresetString) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "axes": {"technology": [
      "myrinet",
      {"label": "mixed", "icn1": "gigabit-ethernet",
       "ecn1": "custom:MyNet,25,120", "icn2": "infiniband"}
    ]}
  })");
  ASSERT_EQ(config.spec.axes.technologies.size(), 2u);
  // A bare preset applies to all three roles.
  EXPECT_EQ(config.spec.axes.technologies[0].icn1.name,
            analytic::myrinet().name);
  EXPECT_EQ(config.spec.axes.technologies[0].icn2.name,
            analytic::myrinet().name);
  EXPECT_EQ(config.spec.axes.technologies[1].label, "mixed");
  EXPECT_EQ(config.spec.axes.technologies[1].ecn1.name, "MyNet");
  EXPECT_DOUBLE_EQ(config.spec.axes.technologies[1].ecn1.latency_us, 25.0);
}

TEST(SweepConfig, JsonRejectsUnknownKeysAtEveryLevel) {
  EXPECT_THROW(sweep_config_from_json(R"({"nope": 1})"), ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"axes": {"nope": []}})"),
               ConfigError);
  EXPECT_THROW(sweep_config_from_json(
                   R"({"backends": [{"type": "analytic", "nope": 1}]})"),
               ConfigError);
  EXPECT_THROW(
      sweep_config_from_json(R"({"axes": {"technology": [{"nope": "x"}]}})"),
      ConfigError);
}

TEST(SweepConfig, JsonRejectsBadValues) {
  EXPECT_THROW(sweep_config_from_json(R"({"mode": "diagonal"})"),
               ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"seed": -1})"), ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"axes": {"clusters": [0]}})"),
               ConfigError);
  EXPECT_THROW(
      sweep_config_from_json(R"({"backends": [{"type": "quantum"}]})"),
      ConfigError);
  EXPECT_THROW(sweep_config_from_json(
                   R"({"backends": [{"type": "analytic", "model": "x"}]})"),
               ConfigError);
}

TEST(SweepConfig, JsonTreeSweepExpandsPathAxes) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "id": "smoke_tree",
    "tree": {
      "tree": {
        "network": "fast-ethernet",
        "children": [
          {"network": "gigabit-ethernet", "egress": "fast-ethernet",
           "children": [{"processors": 16, "lambda_per_s": 100},
                        {"processors": 8, "lambda_per_s": 50}]},
          {"network": "gigabit-ethernet", "egress": "fast-ethernet",
           "children": [{"processors": 32, "lambda_per_s": 75}]}
        ]
      },
      "message_bytes": 1024
    },
    "axes": {
      "paths": [{"path": "root.children[1].icn.bandwidth",
                 "values": [125, 1250]}],
      "message_bytes": [512, 1024]
    },
    "backends": [{"type": "analytic"}]
  })");
  ASSERT_NE(config.spec.base_tree, nullptr);
  ASSERT_EQ(config.spec.axes.node_paths.size(), 1u);
  EXPECT_EQ(config.spec.axes.node_paths[0].path,
            "root.children[1].icn.bandwidth");

  const std::vector<runner::SweepPoint> points =
      runner::expand_sweep(config.spec);
  ASSERT_EQ(points.size(), 4u);  // 2 path values x 2 message sizes
  for (const auto& point : points) {
    ASSERT_NE(point.tree, nullptr);
    EXPECT_EQ(point.tree->total_processors(), 56u);
  }
  // Path axis is outermost; message_bytes varies fastest.
  EXPECT_EQ(analytic::tree_path_value(*points[0].tree,
                                      "root.children[1].icn.bandwidth"),
            125.0);
  EXPECT_EQ(points[0].tree->message_bytes, 512.0);
  EXPECT_EQ(points[1].tree->message_bytes, 1024.0);
  EXPECT_EQ(analytic::tree_path_value(*points[2].tree,
                                      "root.children[1].icn.bandwidth"),
            1250.0);
}

TEST(SweepConfig, TreeSweepRejectsShapeAxesAndOrphanPaths) {
  // The topology owns technology/lambda/clusters; those axes cannot
  // combine with a "tree", and path axes are meaningless without one.
  // The combination rules apply at expansion (the loader only parses).
  const SweepRunConfig tree_with_clusters = sweep_config_from_json(R"({
    "tree": {"tree": {"network": "fast-ethernet",
                      "children": [{"processors": 4, "lambda_per_s": 100},
                                   {"processors": 4, "lambda_per_s": 100}]}},
    "axes": {"clusters": [2, 4]}
  })");
  EXPECT_THROW(runner::expand_sweep(tree_with_clusters.spec), ConfigError);

  const SweepRunConfig paths_without_tree = sweep_config_from_json(R"({
    "axes": {"paths": [{"path": "root.icn.bandwidth", "values": [125]}]}
  })");
  EXPECT_THROW(runner::expand_sweep(paths_without_tree.spec), ConfigError);

  // A path axis without values is malformed at parse time.
  EXPECT_THROW(sweep_config_from_json(R"({
    "axes": {"paths": [{"path": "root.icn.bandwidth"}]}
  })"),
               ConfigError);
}

TEST(SweepConfig, JsonWorkloadAndDistributionAxes) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "id": "heavy",
    "total_nodes": 32,
    "workload": {"failure": {"mtbf_us": 1e6, "mttr_us": 1e3}},
    "axes": {
      "clusters": [2],
      "service_cv2": [0.0, 1.0, 4.0],
      "arrival_ca2": [1.0, 2.0]
    }
  })");
  ASSERT_TRUE(config.spec.workload.failure.has_value());
  EXPECT_DOUBLE_EQ(config.spec.workload.failure->mtbf_us, 1e6);
  EXPECT_EQ(config.spec.axes.service_cv2,
            (std::vector<double>{0.0, 1.0, 4.0}));
  EXPECT_EQ(config.spec.axes.arrival_ca2, (std::vector<double>{1.0, 2.0}));

  const auto points = runner::expand_sweep(config.spec);
  ASSERT_EQ(points.size(), 6u);  // 3 cv2 x 2 ca2, nested innermost
  // ca2 varies fastest; every point keeps the fixed failure scenario.
  EXPECT_DOUBLE_EQ(points[0].config.scenario.service_cv2, 0.0);
  EXPECT_DOUBLE_EQ(points[0].config.scenario.arrival_ca2, 1.0);
  EXPECT_DOUBLE_EQ(points[1].config.scenario.arrival_ca2, 2.0);
  EXPECT_DOUBLE_EQ(points[5].config.scenario.service_cv2, 4.0);
  for (const auto& point : points) {
    ASSERT_TRUE(point.config.scenario.failure.has_value());
    EXPECT_DOUBLE_EQ(point.config.scenario.failure->mttr_us, 1e3);
  }
  // Multi-valued axes label their coordinates.
  EXPECT_NE(points[0].label.find("cv2="), std::string::npos);
  EXPECT_NE(points[0].label.find("ca2="), std::string::npos);
}

TEST(SweepConfig, JsonWorkloadMmppAppliesToEveryPoint) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "id": "bursty",
    "total_nodes": 32,
    "workload": {"mmpp": {"burst_ratio": 6.0, "burst_fraction": 0.2,
                          "burst_dwell_us": 500.0}},
    "axes": {"clusters": [2, 4]}
  })");
  const auto points = runner::expand_sweep(config.spec);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    ASSERT_TRUE(point.config.scenario.mmpp.has_value());
    EXPECT_DOUBLE_EQ(point.config.scenario.mmpp->burst_ratio, 6.0);
  }
}

TEST(SweepConfig, KeyValueDistributionAxes) {
  const KeyValueFile file = KeyValueFile::parse(
      "id = kvheavy\n"
      "clusters = 2\n"
      "total_nodes = 32\n"
      "service_cv2 = 0, 4\n"
      "arrival_ca2 = 2\n");
  const SweepRunConfig config = sweep_config_from_keyvalue(file);
  EXPECT_EQ(config.spec.axes.service_cv2, (std::vector<double>{0.0, 4.0}));
  EXPECT_EQ(config.spec.axes.arrival_ca2, (std::vector<double>{2.0}));
  const auto points = runner::expand_sweep(config.spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1].config.scenario.service_cv2, 4.0);
  EXPECT_DOUBLE_EQ(points[1].config.scenario.arrival_ca2, 2.0);
}

TEST(SweepConfig, TreeSweepRejectsDistributionAxesButTakesFixedWorkload) {
  // The axes are flat-only; a tree sweep takes the topology-wide
  // scenario through the fixed "workload" instead.
  const SweepRunConfig with_axis = sweep_config_from_json(R"({
    "tree": {"tree": {"network": "fast-ethernet",
                      "children": [{"processors": 4, "lambda_per_s": 100},
                                   {"processors": 4, "lambda_per_s": 100}]}},
    "axes": {"service_cv2": [0.0, 4.0]}
  })");
  EXPECT_THROW(runner::expand_sweep(with_axis.spec), ConfigError);

  const SweepRunConfig fixed = sweep_config_from_json(R"({
    "tree": {"tree": {"network": "fast-ethernet",
                      "children": [{"processors": 4, "lambda_per_s": 100},
                                   {"processors": 4, "lambda_per_s": 100}]}},
    "workload": {"service_cv2": 4.0}
  })");
  const auto points = runner::expand_sweep(fixed.spec);
  ASSERT_FALSE(points.empty());
  ASSERT_NE(points[0].tree, nullptr);
  EXPECT_DOUBLE_EQ(points[0].tree->scenario.service_cv2, 4.0);
}

TEST(SweepConfig, JsonRejectsBadWorkloadValues) {
  EXPECT_THROW(sweep_config_from_json(R"({"workload": {"service_cv2": -1}})"),
               ConfigError);
  EXPECT_THROW(sweep_config_from_json(
                   R"({"workload": {"arrival_ca2": 2.0,
                                    "mmpp": {"burst_ratio": 2.0}}})"),
               ConfigError);
  // Axis values are validated when points are built, like every axis.
  const SweepRunConfig bad_axis = sweep_config_from_json(
      R"({"total_nodes": 32, "axes": {"clusters": [2],
                                      "service_cv2": [-1]}})");
  EXPECT_THROW(runner::expand_sweep(bad_axis.spec), ConfigError);
}

TEST(SweepConfig, JsonFaultTolerancePolicy) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "id": "s",
    "on_error": "collect-all",
    "max_attempts": 3,
    "cell_deadline_ms": 60000,
    "degraded_utilization": 0.999
  })");
  EXPECT_EQ(config.on_error, runner::FailurePolicy::kCollectAll);
  EXPECT_EQ(config.max_attempts, 3u);
  EXPECT_DOUBLE_EQ(config.cell_deadline_ms, 60000.0);
  EXPECT_DOUBLE_EQ(config.degraded_utilization, 0.999);

  // Defaults preserve the historical semantics.
  const SweepRunConfig plain = sweep_config_from_json(R"({"id": "s"})");
  EXPECT_EQ(plain.on_error, runner::FailurePolicy::kFailFast);
  EXPECT_EQ(plain.max_attempts, 1u);
  EXPECT_DOUBLE_EQ(plain.cell_deadline_ms, 0.0);
  EXPECT_DOUBLE_EQ(plain.degraded_utilization, 1.0);
}

TEST(SweepConfig, JsonRejectsBadFaultToleranceValues) {
  EXPECT_THROW(sweep_config_from_json(R"({"on_error": "explode"})"),
               ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"max_attempts": 0})"), ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"cell_deadline_ms": -1})"),
               ConfigError);
  EXPECT_THROW(sweep_config_from_json(R"({"degraded_utilization": 0})"),
               ConfigError);
}

TEST(SweepConfig, KeyValueFaultTolerancePolicy) {
  const KeyValueFile file = KeyValueFile::parse(
      "id = kv\n"
      "on_error = collect-all\n"
      "max_attempts = 2\n"
      "cell_deadline_ms = 500\n"
      "degraded_utilization = 0.98\n");
  const SweepRunConfig config = sweep_config_from_keyvalue(file);
  EXPECT_EQ(config.on_error, runner::FailurePolicy::kCollectAll);
  EXPECT_EQ(config.max_attempts, 2u);
  EXPECT_DOUBLE_EQ(config.cell_deadline_ms, 500.0);
  EXPECT_DOUBLE_EQ(config.degraded_utilization, 0.98);
}

TEST(SweepConfig, ParseFailurePolicyVocabulary) {
  EXPECT_EQ(runner::parse_failure_policy("fail-fast"),
            runner::FailurePolicy::kFailFast);
  EXPECT_EQ(runner::parse_failure_policy("collect-all"),
            runner::FailurePolicy::kCollectAll);
  EXPECT_THROW(runner::parse_failure_policy("retry"), ConfigError);
}

TEST(SweepConfig, ZippedModeRoundTrips) {
  const SweepRunConfig config = sweep_config_from_json(R"({
    "mode": "zipped",
    "axes": {"clusters": [2, 4, 8], "message_bytes": [64, 256, 1024]}
  })");
  const auto points = runner::expand_sweep(config.spec);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[2].clusters, 8u);
  EXPECT_DOUBLE_EQ(points[2].message_bytes, 1024.0);
}

TEST(SweepConfig, KeyValueVariant) {
  const KeyValueFile file = KeyValueFile::parse(
      "id = kvstudy\n"
      "clusters = 2, 4\n"
      "message_bytes = 512\n"
      "architecture = blocking\n"
      "technology = case1\n"
      "backends = analytic, des\n"
      "model = picard\n"
      "messages = 700\n"
      "warmup = 70\n"
      "seed = 5\n");
  const SweepRunConfig config = sweep_config_from_keyvalue(file);
  EXPECT_EQ(config.spec.id, "kvstudy");
  EXPECT_EQ(config.spec.axes.clusters, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(config.spec.base_seed, 5u);
  ASSERT_EQ(config.backends.size(), 2u);
  EXPECT_EQ(config.backends[0]->name(), "analytic");
  EXPECT_EQ(config.backends[1]->name(), "des");
}

TEST(SweepConfig, KeyValueRejectsUnknownKeys) {
  const KeyValueFile file = KeyValueFile::parse("clusterz = 2\n");
  EXPECT_THROW(sweep_config_from_keyvalue(file), ConfigError);
}

TEST(SweepConfig, ParseThrottlingModelVocabulary) {
  EXPECT_EQ(runner::parse_throttling_model("bisection"),
            analytic::SourceThrottling::kBisection);
  EXPECT_EQ(runner::parse_throttling_model("picard"),
            analytic::SourceThrottling::kPicard);
  EXPECT_EQ(runner::parse_throttling_model("mva"),
            analytic::SourceThrottling::kExactMva);
  EXPECT_EQ(runner::parse_throttling_model("none"),
            analytic::SourceThrottling::kNone);
  EXPECT_THROW(runner::parse_throttling_model("magic"), ConfigError);
}

TEST(SweepConfig, ParseTechnologyPresetsAndCustomRoundTrip) {
  EXPECT_EQ(analytic::parse_technology("gigabit-ethernet").name,
            analytic::gigabit_ethernet().name);
  EXPECT_EQ(analytic::parse_technology("infiniband").name,
            analytic::infiniband().name);
  const analytic::NetworkTechnology custom =
      analytic::parse_technology("custom:Lab,12.5,800");
  EXPECT_EQ(custom.name, "Lab");
  EXPECT_DOUBLE_EQ(custom.latency_us, 12.5);
  EXPECT_DOUBLE_EQ(custom.bandwidth_bytes_per_us,
                   units::mbps_to_bytes_per_us(800.0));
  EXPECT_THROW(analytic::parse_technology("token-ring"), ConfigError);
  EXPECT_THROW(analytic::parse_technology("custom:Lab,12.5"), ConfigError);
}

TEST(SweepConfig, ParseArchitectureVocabulary) {
  EXPECT_EQ(analytic::parse_architecture("non-blocking"),
            analytic::NetworkArchitecture::kNonBlocking);
  EXPECT_EQ(analytic::parse_architecture("fat-tree"),
            analytic::NetworkArchitecture::kNonBlocking);
  EXPECT_EQ(analytic::parse_architecture("blocking"),
            analytic::NetworkArchitecture::kBlocking);
  EXPECT_EQ(analytic::parse_architecture("chain"),
            analytic::NetworkArchitecture::kBlocking);
  EXPECT_THROW(analytic::parse_architecture("mesh"), ConfigError);
}

}  // namespace
