// Compiled with HMCS_OBS_DISABLED (see tests/CMakeLists.txt): proves the
// instrumentation macros are zero-cost no-ops in a disabled translation
// unit — they compile, evaluate nothing, and register nothing — while
// the library API itself stays available for explicit use.

#include <gtest/gtest.h>

#include "hmcs/obs/metrics.hpp"

#if !defined(HMCS_OBS_DISABLED)
#error "this test must be built with HMCS_OBS_DISABLED"
#endif

namespace {

static_assert(!hmcs::obs::kEnabled);

int evaluations = 0;

// Only ever named inside the disabled macros' unevaluated sizeof, hence
// maybe_unused: a definition with no odr-use.
[[maybe_unused]] int observed_value() {
  ++evaluations;
  return 1;
}

TEST(ObsDisabled, MacrosCompileToNoOpsAndRegisterNothing) {
  const std::size_t before = hmcs::obs::Registry::global().size();
  HMCS_OBS_COUNTER_INC("disabled.counter");
  HMCS_OBS_COUNTER_ADD("disabled.counter", observed_value());
  HMCS_OBS_GAUGE_SET("disabled.gauge", observed_value());
  HMCS_OBS_STAT_OBSERVE("disabled.stat", observed_value());
  { HMCS_OBS_TIMER_SCOPE("disabled.timer"); }
  EXPECT_EQ(hmcs::obs::Registry::global().size(), before);
  // The value expressions are syntax-checked but never evaluated.
  EXPECT_EQ(evaluations, 0);
  const hmcs::obs::MetricsSnapshot snapshot =
      hmcs::obs::Registry::global().snapshot();
  EXPECT_EQ(snapshot.find_counter("disabled.counter"), nullptr);
  EXPECT_EQ(snapshot.find_gauge("disabled.gauge"), nullptr);
}

TEST(ObsDisabled, ExplicitApiStillWorks) {
  // Disabling the macros severs the hot-path cost, not the library:
  // explicit registry use (exporters, tests) keeps functioning.
  hmcs::obs::Registry registry;
  registry.counter("explicit")->inc(3);
  EXPECT_EQ(registry.snapshot().find_counter("explicit")->value, 3u);
}

}  // namespace
