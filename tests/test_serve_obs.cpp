// Tests for the serve tier's observability surface: the `metrics` and
// extended `stats` admin ops, the unknown-op error, the per-request
// `timing` breakdown, the structured access log (ring semantics and
// on-disk lines), and the TraceSession span tree.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hmcs/obs/trace.hpp"
#include "hmcs/serve/access_log.hpp"
#include "hmcs/serve/service.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

constexpr const char* kTinyRequest =
    R"({"id":"r1","config":{"clusters":2,"total_nodes":32}})";

std::string temp_log_path(const char* tag) {
  return ::testing::TempDir() + "hmcs_access_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// Admin ops

TEST(ServeObservability, MetricsOpReturnsPrometheusText) {
  serve::ServeService service({});
  service.handle_line(kTinyRequest);
  service.handle_line(kTinyRequest);  // one hit

  const JsonValue reply =
      parse_json(service.handle_line(R"({"op":"metrics","id":"m"})"));
  EXPECT_EQ(reply.at("status").as_string(), "ok");
  EXPECT_EQ(reply.at("op").as_string(), "metrics");
  EXPECT_EQ(reply.at("id").as_string(), "m");
  EXPECT_NE(reply.at("content_type").as_string().find("0.0.4"),
            std::string::npos);

  const std::string body = reply.at("body").as_string();
  EXPECT_NE(body.find("# TYPE serve_cache_hits counter"), std::string::npos);
  EXPECT_NE(body.find("serve_cache_hits 1"), std::string::npos);
  // The request timer renders as a cumulative seconds histogram.
  EXPECT_NE(body.find("_seconds_bucket{le=\"+Inf\"}"), std::string::npos);
}

TEST(ServeObservability, StatsOpCarriesRedLatencyPoolAndUptime) {
  serve::ServeService service({});
  service.set_pool_status_fn([] {
    return serve::ServeService::PoolStatus{.queued = 3,
                                           .queue_limit = 64,
                                           .threads = 4};
  });
  service.handle_line(kTinyRequest);
  service.handle_line(kTinyRequest);

  const JsonValue stats =
      parse_json(service.handle_line(R"({"op":"stats"})"));
  // Pre-existing contract (loadgen depends on these) is untouched.
  EXPECT_EQ(stats.at("serve").at("evaluations").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("hits").as_number(), 1.0);

  const JsonValue& red = stats.at("red");
  EXPECT_EQ(red.at("requests").as_number(), 2.0);
  EXPECT_EQ(red.at("errors").as_number(), 0.0);
  EXPECT_GT(red.at("rate_per_s").as_number(), 0.0);
  EXPECT_GE(red.at("p99_us").as_number(), red.at("p50_us").as_number());

  const JsonValue& latency = stats.at("latency");
  EXPECT_EQ(latency.at("count").as_number(), 2.0);
  EXPECT_GT(latency.at("max_us").as_number(), 0.0);

  const JsonValue& pool = stats.at("pool");
  EXPECT_EQ(pool.at("queued").as_number(), 3.0);
  EXPECT_EQ(pool.at("queue_limit").as_number(), 64.0);
  EXPECT_EQ(pool.at("threads").as_number(), 4.0);

  // Per-shard occupancy sums to the entry count.
  const JsonValue& shards = stats.at("cache").at("shard_entries");
  double total = 0.0;
  for (const JsonValue& entry : shards.items) total += entry.as_number();
  EXPECT_EQ(total, stats.at("cache").at("entries").as_number());

  EXPECT_GE(stats.at("uptime_s").as_number(), 0.0);
  EXPECT_EQ(stats.at("inflight_keys").as_number(), 0.0);
}

TEST(ServeObservability, UnknownOpEnumeratesOpsAndEchoesId) {
  serve::ServeService service({});
  const std::string reply =
      service.handle_line(R"({"op":"scrape","id":"u7"})");
  EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(reply.find("\"id\":\"u7\""), std::string::npos);
  EXPECT_NE(reply.find("unknown op 'scrape'"), std::string::npos);
  EXPECT_NE(reply.find("ping|stats|metrics"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-request timing breakdown

TEST(ServeObservability, TimingFieldBreaksDownTheRequest) {
  serve::ServeService service({});
  const std::string reply = service.handle_line(
      R"({"id":"t","timing":true,
          "backend":{"type":"analytic","model":"mva"},
          "config":{"clusters":8,"total_nodes":65536}})");
  const JsonValue doc = parse_json(reply);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  const JsonValue& timing = doc.at("timing");
  EXPECT_EQ(timing.at("trace").as_string().substr(0, 1), "r");

  const double total = timing.at("total_ns").as_number();
  const double parse = timing.at("parse_ns").as_number();
  const double probe = timing.at("cache_probe_ns").as_number();
  const double evaluate = timing.at("evaluate_ns").as_number();
  const double serialize = timing.at("serialize_ns").as_number();
  EXPECT_GT(total, 0.0);
  const double staged = parse + probe + evaluate + serialize;
  EXPECT_LE(staged, total);
  // For a heavy evaluation the stages dominate the wall time.
  EXPECT_GE(staged, 0.5 * total);
  EXPECT_GT(evaluate, parse);
}

TEST(ServeObservability, TimingIsNotPartOfTheCacheKey) {
  serve::ServeService service({});
  const std::string plain = service.handle_line(kTinyRequest);
  const std::string timed = service.handle_line(
      R"({"id":"r1","timing":true,"config":{"clusters":2,"total_nodes":32}})");
  // Same canonical key: the timed request is a cache hit...
  EXPECT_EQ(service.counters().evaluations, 1u);
  EXPECT_EQ(service.cache_stats().hits, 1u);
  // ...whose reply adds the timing member but shares the cached body.
  EXPECT_EQ(plain.find("\"timing\""), std::string::npos);
  EXPECT_NE(timed.find("\"timing\""), std::string::npos);
  const JsonValue doc = parse_json(timed);
  EXPECT_TRUE(doc.find("timing")->find("cache_probe_ns") != nullptr);
  // Same canonical key hash in both replies — one shared cache entry.
  EXPECT_EQ(doc.at("key").as_string(),
            parse_json(plain).at("key").as_string());
}

// ---------------------------------------------------------------------------
// Access log

TEST(AccessLogRing, WritesEveryAppendedLineInOrder) {
  const std::string path = temp_log_path("order");
  {
    serve::AccessLog::Options options;
    options.path = path;
    options.capacity = 64;
    serve::AccessLog log(options);
    for (int i = 0; i < 200; ++i) {
      while (!log.try_append("line " + std::to_string(i))) {
        std::this_thread::yield();  // ring full: wait for the writer
      }
    }
    log.flush();
    const serve::AccessLog::Stats stats = log.stats();
    EXPECT_EQ(stats.appended, 200u);
    EXPECT_EQ(stats.written, 200u);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(lines[static_cast<std::size_t>(i)],
              "line " + std::to_string(i));
  }
  std::remove(path.c_str());
}

TEST(AccessLogRing, ShedsInsteadOfBlockingWhenFull) {
  const std::string path = temp_log_path("shed");
  {
    serve::AccessLog::Options options;
    options.path = path;
    options.capacity = 8;
    options.flush_interval_ms = 1000;  // keep the writer asleep
    serve::AccessLog log(options);
    std::uint64_t refused = 0;
    for (int i = 0; i < 64; ++i) {
      if (!log.try_append("x")) ++refused;
    }
    EXPECT_GT(refused, 0u);
    EXPECT_EQ(log.stats().shed, refused);
    EXPECT_EQ(log.stats().appended + refused, 64u);
  }  // dtor drains whatever the ring still holds
  std::remove(path.c_str());
}

TEST(ServeObservability, AccessLogRecordsOutcomesPerRequest) {
  const std::string path = temp_log_path("outcomes");
  {
    serve::ServeService::Options options;
    serve::AccessLog::Options log_options;
    log_options.path = path;
    options.access_log = std::make_shared<serve::AccessLog>(log_options);
    serve::ServeService service(options);

    service.handle_line(kTinyRequest);              // miss
    service.handle_line(kTinyRequest);              // hit
    service.handle_line("not json");                // error
    service.handle_line(R"({"op":"stats"})");       // op: NOT logged
    options.access_log->flush();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);

  const JsonValue miss = parse_json(lines[0]);
  EXPECT_EQ(miss.at("outcome").as_string(), "miss");
  EXPECT_EQ(miss.at("id").as_string(), "r1");
  EXPECT_EQ(miss.at("key").as_string().size(), 16u);
  EXPECT_EQ(miss.at("backend").as_string(), "analytic");
  EXPECT_GT(miss.at("total_ns").as_number(), 0.0);
  EXPECT_GT(miss.at("evaluate_ns").as_number(), 0.0);
  EXPECT_GT(miss.at("ts_ms").as_number(), 0.0);

  const JsonValue hit = parse_json(lines[1]);
  EXPECT_EQ(hit.at("outcome").as_string(), "hit");
  EXPECT_TRUE(hit.find("evaluate_ns") == nullptr);  // no evaluation ran

  const JsonValue error = parse_json(lines[2]);
  EXPECT_EQ(error.at("outcome").as_string(), "error");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(ServeObservability, TraceSessionGetsRequestAndStageSpans) {
  serve::ServeService::Options options;
  options.trace = std::make_shared<obs::TraceSession>();
  serve::ServeService service(options);
  service.handle_line(kTinyRequest);

  const std::vector<obs::SpanEvent> events = options.trace->events();
  const obs::SpanEvent* request_span = nullptr;
  std::vector<const obs::SpanEvent*> stage_spans;
  for (const obs::SpanEvent& event : events) {
    if (event.category == "serve.request") request_span = &event;
    if (event.category == "serve.stage") stage_spans.push_back(&event);
  }
  ASSERT_NE(request_span, nullptr);
  EXPECT_EQ(request_span->name.substr(0, 5), "req r");
  ASSERT_GE(stage_spans.size(), 3u);  // parse, cache_probe, evaluate, ...
  for (const obs::SpanEvent* stage : stage_spans) {
    // Every stage nests inside the request span.
    EXPECT_GE(stage->timestamp_us, request_span->timestamp_us);
    EXPECT_LE(stage->timestamp_us + stage->duration_us,
              request_span->timestamp_us + request_span->duration_us + 1.0);
  }
}

}  // namespace
