// Golden regression for the reproducibility contract of the event
// engine: a fixed-seed simulation must produce bit-identical results on
// every machine and after every engine change. The constants below were
// recorded from the seed implementation (std::function + binary heap +
// hash-set cancellation); the calendar-queue engine must match them
// exactly — same (time, sequence) total order, same RNG draw order.
//
// EXPECT_EQ on doubles is deliberate: the contract is bit-for-bit
// equality, not tolerance. If an engine change legitimately reorders
// same-time events or RNG draws, that is a behavioural break, not a
// constant to re-record casually.

#include <gtest/gtest.h>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"

namespace {

using namespace hmcs;

TEST(EngineDeterminism, NonBlockingCase1GoldenRun) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  sim::SimOptions options;
  options.seed = 12345;
  options.warmup_messages = 500;
  options.measured_messages = 5000;
  const sim::SimResult result = sim::MultiClusterSim(config, options).run();

  EXPECT_EQ(result.messages_measured, 5000u);
  EXPECT_EQ(result.events_executed, 19651u);
  EXPECT_EQ(result.mean_latency_us, 25474.503262800848);
  EXPECT_EQ(result.p99_latency_us, 39586.439621446072);
}

TEST(EngineDeterminism, BlockingCase2GoldenRun) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase2, 8,
      analytic::NetworkArchitecture::kBlocking, 4096.0);
  sim::SimOptions options;
  options.seed = 987654321;
  options.warmup_messages = 200;
  options.measured_messages = 3000;
  const sim::SimResult result = sim::MultiClusterSim(config, options).run();

  EXPECT_EQ(result.events_executed, 12356u);
  EXPECT_EQ(result.mean_latency_us, 53429.88875165092);
  EXPECT_EQ(result.p50_latency_us, 59004.459376468847);
}

TEST(EngineDeterminism, RepeatRunsAreIdentical) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  sim::SimOptions options;
  options.seed = 777;
  options.warmup_messages = 100;
  options.measured_messages = 1000;
  const sim::SimResult first = sim::MultiClusterSim(config, options).run();
  const sim::SimResult second = sim::MultiClusterSim(config, options).run();
  EXPECT_EQ(first.mean_latency_us, second.mean_latency_us);
  EXPECT_EQ(first.p95_latency_us, second.p95_latency_us);
  EXPECT_EQ(first.events_executed, second.events_executed);
}

}  // namespace
