#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::simcore::Rng;
using hmcs::simcore::SplitMix64;

TEST(SplitMix, KnownSequence) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Vigna).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDecorrelate) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), hmcs::ConfigError);
}

TEST(Rng, UniformBelowIsUnbiased) {
  Rng rng(9);
  constexpr std::uint64_t kBound = 7;
  constexpr int kSamples = 70000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = rng.uniform_below(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  // Each bucket expects 10000; allow 5 sigma (~sqrt(10000*6/7) ~ 92).
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
  EXPECT_THROW(rng.uniform_below(0), hmcs::ConfigError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  constexpr double kMean = 4000.0;  // the paper's think time in us
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(kMean);
    ASSERT_GE(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, kMean, 0.02 * kMean);
  // Exponential: variance = mean^2.
  EXPECT_NEAR(var, kMean * kMean, 0.06 * kMean * kMean);
  EXPECT_THROW(rng.exponential(0.0), hmcs::ConfigError);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), hmcs::ConfigError);
  Rng fixed(13);
  EXPECT_FALSE(fixed.bernoulli(0.0));
  EXPECT_TRUE(fixed.bernoulli(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
