// Heterogeneous Cluster-of-Clusters extension: reduction to the
// Super-Cluster model for identical clusters, and qualitative behaviour
// for genuinely heterogeneous ones.

#include <gtest/gtest.h>

#include <algorithm>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

ClusterOfClustersConfig hetero_config() {
  // Two big GE clusters + two small FE clusters behind a FE backbone.
  ClusterOfClustersConfig config;
  ClusterSpec fast;
  fast.nodes = 32;
  fast.icn1 = gigabit_ethernet();
  fast.ecn1 = fast_ethernet();
  fast.generation_rate_per_us = 1e-4;
  ClusterSpec slow;
  slow.nodes = 8;
  slow.icn1 = fast_ethernet();
  slow.ecn1 = fast_ethernet();
  slow.generation_rate_per_us = 0.5e-4;
  config.clusters = {fast, fast, slow, slow};
  config.icn2 = fast_ethernet();
  config.switch_params = {24, 10.0};
  config.architecture = NetworkArchitecture::kNonBlocking;
  config.message_bytes = 1024.0;
  return config;
}

TEST(ClusterOfClusters, TotalNodesSumsClusters) {
  EXPECT_EQ(hetero_config().total_nodes(), 80u);
}

TEST(ClusterOfClusters, HomogeneousReductionMatchesSuperClusterModel) {
  // Identical clusters must reproduce the Super-Cluster prediction (with
  // the consistent ECN1 accounting and the same bisection fixed point).
  for (const std::uint32_t clusters : {2u, 4u, 8u}) {
    const SystemConfig super = paper_scenario(
        HeterogeneityCase::kCase1, clusters,
        NetworkArchitecture::kNonBlocking, 1024.0, 64, 1e-4);
    ModelOptions options;
    options.fixed_point.queue_rule = QueueLengthRule::kConsistent;
    const LatencyPrediction expected = predict_latency(super, options);

    const ClusterOfClustersConfig hetero =
        ClusterOfClustersConfig::from_super_cluster(super);
    const HeteroLatencyPrediction actual =
        predict_cluster_of_clusters(hetero);

    EXPECT_NEAR(actual.mean_latency_us, expected.mean_latency_us,
                1e-6 * expected.mean_latency_us)
        << "C=" << clusters;
    for (const double per_cluster : actual.per_cluster_latency_us) {
      EXPECT_NEAR(per_cluster, expected.mean_latency_us,
                  1e-6 * expected.mean_latency_us);
    }
    EXPECT_NEAR(actual.effective_rate_scale,
                expected.lambda_effective / expected.lambda_offered,
                1e-6);
  }
}

TEST(ClusterOfClusters, AmvaHomogeneousReductionMatchesExactMva) {
  // Identical clusters through the multi-class AMVA solver must land on
  // the Super-Cluster exact-MVA prediction to Schweitzer accuracy.
  const SystemConfig super = paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking,
      1024.0, 128, 2e-4);
  ModelOptions options;
  options.fixed_point.method = SourceThrottling::kExactMva;
  const LatencyPrediction exact = predict_latency(super, options);

  const HeteroLatencyPrediction approx = predict_cluster_of_clusters(
      ClusterOfClustersConfig::from_super_cluster(super),
      HeteroSolver::kApproxMva);
  EXPECT_TRUE(approx.fixed_point_converged);
  EXPECT_NEAR(approx.mean_latency_us, exact.mean_latency_us,
              0.05 * exact.mean_latency_us);
  EXPECT_NEAR(approx.icn2.utilization, exact.icn2.utilization, 0.05);
}

TEST(ClusterOfClusters, AmvaHandlesSaturationGracefully) {
  ClusterOfClustersConfig config = hetero_config();
  for (auto& cluster : config.clusters) cluster.generation_rate_per_us = 1e-2;
  const HeteroLatencyPrediction prediction =
      predict_cluster_of_clusters(config, HeteroSolver::kApproxMva);
  EXPECT_TRUE(prediction.fixed_point_converged);
  EXPECT_LT(prediction.effective_rate_scale, 0.5);
  for (const auto& center : prediction.ecn1) {
    EXPECT_LT(center.utilization, 1.0 + 1e-9);
  }
}

TEST(ClusterOfClusters, SlowClusterSeesHigherLocalLatency) {
  const HeteroLatencyPrediction prediction =
      predict_cluster_of_clusters(hetero_config());
  // Clusters 0/1 have GE intra networks; 2/3 have FE. Their source
  // latencies must reflect that.
  EXPECT_LT(prediction.per_cluster_latency_us[0],
            prediction.per_cluster_latency_us[2]);
  EXPECT_NEAR(prediction.per_cluster_latency_us[0],
              prediction.per_cluster_latency_us[1], 1e-9);
}

TEST(ClusterOfClusters, MeanIsGenerationWeighted) {
  const HeteroLatencyPrediction prediction =
      predict_cluster_of_clusters(hetero_config());
  double lo = prediction.per_cluster_latency_us[0];
  double hi = lo;
  for (const double v : prediction.per_cluster_latency_us) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(prediction.mean_latency_us, lo);
  EXPECT_LE(prediction.mean_latency_us, hi);
}

TEST(ClusterOfClusters, IngressEgressBalanceAtIcn2) {
  // Everything leaving the clusters passes ICN2 exactly once.
  const HeteroLatencyPrediction prediction =
      predict_cluster_of_clusters(hetero_config());
  double ecn1_total = 0.0;
  for (const auto& center : prediction.ecn1) ecn1_total += center.arrival_rate;
  EXPECT_NEAR(ecn1_total, 2.0 * prediction.icn2.arrival_rate, 1e-12);
}

TEST(ClusterOfClusters, ThrottlesUnderHeavyLoad) {
  ClusterOfClustersConfig config = hetero_config();
  for (auto& cluster : config.clusters) cluster.generation_rate_per_us = 1e-2;
  const HeteroLatencyPrediction prediction =
      predict_cluster_of_clusters(config);
  EXPECT_TRUE(prediction.fixed_point_converged);
  EXPECT_LT(prediction.effective_rate_scale, 0.5);
  EXPECT_GT(prediction.mean_latency_us, 0.0);
}

TEST(ClusterOfClusters, Validation) {
  ClusterOfClustersConfig config;
  EXPECT_THROW(config.validate(), hmcs::ConfigError);  // no clusters
  config = hetero_config();
  config.clusters[1].nodes = 0;
  EXPECT_THROW(predict_cluster_of_clusters(config), hmcs::ConfigError);
  config = hetero_config();
  config.clusters[0].generation_rate_per_us = 0.0;
  EXPECT_THROW(predict_cluster_of_clusters(config), hmcs::ConfigError);
  config = hetero_config();
  config.message_bytes = 0.0;
  EXPECT_THROW(predict_cluster_of_clusters(config), hmcs::ConfigError);
}

TEST(ClusterOfClusters, AgreesWithTreeApiOnDepth2Lowering) {
  // The CoC entry point is now a thin view over the tree solver; calling
  // the tree API directly on the lowered depth-2 tree must agree exactly.
  const ClusterOfClustersConfig config = hetero_config();
  const HeteroLatencyPrediction via_coc =
      predict_cluster_of_clusters(config);

  const ModelTree tree = ModelTree::from_cluster_of_clusters(config);
  TreeModelOptions options;
  options.fixed_point.method = SourceThrottling::kBisection;
  options.fixed_point.queue_rule = QueueLengthRule::kConsistent;
  const TreeLatencyPrediction via_tree = predict_model_tree(tree, options);

  EXPECT_EQ(via_tree.mean_latency_us, via_coc.mean_latency_us);
  EXPECT_EQ(via_tree.effective_rate_scale, via_coc.effective_rate_scale);
  ASSERT_EQ(via_tree.per_leaf_latency_us.size(),
            via_coc.per_cluster_latency_us.size());
  for (std::size_t i = 0; i < via_tree.per_leaf_latency_us.size(); ++i) {
    EXPECT_EQ(via_tree.per_leaf_latency_us[i],
              via_coc.per_cluster_latency_us[i]);
  }
}

TEST(ClusterOfClusters, FromSuperClusterCopiesShape) {
  const SystemConfig super = paper_scenario(
      HeterogeneityCase::kCase2, 8, NetworkArchitecture::kBlocking, 512.0);
  const ClusterOfClustersConfig hetero =
      ClusterOfClustersConfig::from_super_cluster(super);
  ASSERT_EQ(hetero.clusters.size(), 8u);
  EXPECT_EQ(hetero.clusters[0].nodes, 32u);
  EXPECT_EQ(hetero.clusters[3].icn1.name, "Fast Ethernet");
  EXPECT_EQ(hetero.icn2.name, "Gigabit Ethernet");
  EXPECT_EQ(hetero.architecture, NetworkArchitecture::kBlocking);
  EXPECT_EQ(hetero.total_nodes(), 256u);
}

}  // namespace
