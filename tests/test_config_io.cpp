// Key=value parsing and SystemConfig loading.

#include <gtest/gtest.h>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/keyvalue.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

const char* kValidConfig = R"(
# sample
clusters              = 8
nodes_per_cluster     = 32
architecture          = non-blocking
icn1                  = gigabit-ethernet
ecn1                  = fast-ethernet
icn2                  = fast-ethernet
message_bytes         = 1024
generation_rate_per_s = 250   # trailing comment
)";

TEST(KeyValue, ParsesCommentsAndWhitespace) {
  const auto file = KeyValueFile::parse(
      "# header\n a = 1 \n\nb=two#inline\n  # only comment\n");
  EXPECT_EQ(file.keys().size(), 2u);
  EXPECT_EQ(file.get("a"), "1");
  EXPECT_EQ(file.get("b"), "two");
  EXPECT_TRUE(file.has("a"));
  EXPECT_FALSE(file.has("c"));
  EXPECT_EQ(file.get_or("c", "dflt"), "dflt");
  EXPECT_EQ(file.get_int("a"), 1);
}

TEST(KeyValue, RejectsMalformedInput) {
  EXPECT_THROW(KeyValueFile::parse("novalue\n"), ConfigError);
  EXPECT_THROW(KeyValueFile::parse("= 5\n"), ConfigError);
  EXPECT_THROW(KeyValueFile::parse("a=1\na=2\n"), ConfigError);
  const auto file = KeyValueFile::parse("a=1\n");
  EXPECT_THROW(file.get("missing"), ConfigError);
  EXPECT_THROW(KeyValueFile::load("/nonexistent/file.cfg"), ConfigError);
}

TEST(KeyValue, UnknownKeyDetection) {
  const auto file = KeyValueFile::parse("a=1\nz=2\n");
  const auto unknown = file.unknown_keys({"a", "b"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "z");
}

TEST(ConfigIo, LoadsValidConfig) {
  const SystemConfig config =
      system_config_from(KeyValueFile::parse(kValidConfig));
  EXPECT_EQ(config.clusters, 8u);
  EXPECT_EQ(config.nodes_per_cluster, 32u);
  EXPECT_EQ(config.architecture, NetworkArchitecture::kNonBlocking);
  EXPECT_EQ(config.icn1.name, "Gigabit Ethernet");
  EXPECT_EQ(config.ecn1.name, "Fast Ethernet");
  EXPECT_DOUBLE_EQ(config.message_bytes, 1024.0);
  EXPECT_DOUBLE_EQ(config.generation_rate_per_us, 2.5e-4);
  // Defaults applied.
  EXPECT_EQ(config.switch_params.ports, 24u);
  EXPECT_DOUBLE_EQ(config.switch_params.latency_us, 10.0);
}

TEST(ConfigIo, ParsesTechnologySpecs) {
  EXPECT_EQ(parse_technology("myrinet").name, "Myrinet");
  EXPECT_EQ(parse_technology("infiniband").name, "Infiniband");
  const NetworkTechnology custom =
      parse_technology("custom:LabNet, 25, 120.5");
  EXPECT_EQ(custom.name, "LabNet");
  EXPECT_DOUBLE_EQ(custom.latency_us, 25.0);
  EXPECT_DOUBLE_EQ(custom.bandwidth_bytes_per_us, 120.5);
  EXPECT_THROW(parse_technology("token-ring"), ConfigError);
  EXPECT_THROW(parse_technology("custom:OnlyName"), ConfigError);
  EXPECT_THROW(parse_technology("custom:X,-1,10"), ConfigError);
}

TEST(ConfigIo, BlockingAliasAccepted) {
  std::string text = kValidConfig;
  text.replace(text.find("non-blocking"), 12, "chain       ");
  const SystemConfig config = system_config_from(KeyValueFile::parse(text));
  EXPECT_EQ(config.architecture, NetworkArchitecture::kBlocking);
}

TEST(ConfigIo, RejectsUnknownKeysAndBadValues) {
  std::string with_typo = kValidConfig;
  with_typo += "mesage_bytes = 12\n";  // typo'd key
  EXPECT_THROW(system_config_from(KeyValueFile::parse(with_typo)),
               ConfigError);

  std::string bad_arch = kValidConfig;
  bad_arch.replace(bad_arch.find("non-blocking"), 12, "mesh        ");
  EXPECT_THROW(system_config_from(KeyValueFile::parse(bad_arch)),
               ConfigError);

  std::string missing = "clusters = 4\n";
  EXPECT_THROW(system_config_from(KeyValueFile::parse(missing)), ConfigError);
}

TEST(ConfigIo, ShippedSampleConfigsLoad) {
  // The example configs in the repo must stay valid.
  const std::string root = HMCS_SOURCE_DIR;
  const SystemConfig case1 =
      load_system_config(root + "/examples/configs/case1_c8.cfg");
  EXPECT_EQ(case1.total_nodes(), 256u);
  const SystemConfig myri =
      load_system_config(root + "/examples/configs/myrinet_backbone.cfg");
  EXPECT_EQ(myri.ecn1.name, "Myrinet");
}

}  // namespace
