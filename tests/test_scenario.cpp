// Table 1/2 scenario presets.

#include <gtest/gtest.h>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

TEST(Scenario, Case1AssignsTable1Networks) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking, 1024.0);
  EXPECT_EQ(config.icn1.name, "Gigabit Ethernet");
  EXPECT_EQ(config.ecn1.name, "Fast Ethernet");
  EXPECT_EQ(config.icn2.name, "Fast Ethernet");
  EXPECT_EQ(config.clusters, 4u);
  EXPECT_EQ(config.nodes_per_cluster, 64u);
  EXPECT_EQ(config.total_nodes(), 256u);
}

TEST(Scenario, Case2SwapsNetworks) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase2, 4, NetworkArchitecture::kBlocking, 512.0);
  EXPECT_EQ(config.icn1.name, "Fast Ethernet");
  EXPECT_EQ(config.ecn1.name, "Gigabit Ethernet");
  EXPECT_EQ(config.icn2.name, "Gigabit Ethernet");
  EXPECT_EQ(config.architecture, NetworkArchitecture::kBlocking);
  EXPECT_DOUBLE_EQ(config.message_bytes, 512.0);
}

TEST(Scenario, Table2Parameters) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 1, NetworkArchitecture::kNonBlocking, 1024.0);
  EXPECT_EQ(config.switch_params.ports, 24u);
  EXPECT_DOUBLE_EQ(config.switch_params.latency_us, 10.0);
  // Headline rate: 0.25 msg/ms (DESIGN.md note 4).
  EXPECT_DOUBLE_EQ(config.generation_rate_per_us, 0.25e-3);
  EXPECT_DOUBLE_EQ(kPaperLiteralRatePerUs, 0.25e-6);
}

TEST(Scenario, SweepIsPowersOfTwoUpTo256) {
  std::size_t count = 0;
  const std::uint32_t* sweep = paper_cluster_sweep(&count);
  ASSERT_EQ(count, 9u);
  EXPECT_EQ(sweep[0], 1u);
  EXPECT_EQ(sweep[4], 16u);
  EXPECT_EQ(sweep[8], 256u);
  for (std::size_t i = 1; i < count; ++i) EXPECT_EQ(sweep[i], 2 * sweep[i - 1]);
}

TEST(Scenario, EverySweepPointDivides256) {
  std::size_t count = 0;
  const std::uint32_t* sweep = paper_cluster_sweep(&count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_NO_THROW(paper_scenario(HeterogeneityCase::kCase1, sweep[i],
                                   NetworkArchitecture::kNonBlocking, 1024.0));
  }
}

TEST(Scenario, RejectsNonDividingClusterCount) {
  EXPECT_THROW(paper_scenario(HeterogeneityCase::kCase1, 3,
                              NetworkArchitecture::kNonBlocking, 1024.0),
               hmcs::ConfigError);
  EXPECT_THROW(paper_scenario(HeterogeneityCase::kCase1, 0,
                              NetworkArchitecture::kNonBlocking, 1024.0),
               hmcs::ConfigError);
}

TEST(Scenario, ToStringLabels) {
  EXPECT_NE(std::string(to_string(HeterogeneityCase::kCase1)).find("GE"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(NetworkArchitecture::kBlocking))
                .find("blocking"),
            std::string::npos);
}

}  // namespace
