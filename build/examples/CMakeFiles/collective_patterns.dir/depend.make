# Empty dependencies file for collective_patterns.
# This may be replaced when dependencies are built.
