file(REMOVE_RECURSE
  "CMakeFiles/collective_patterns.dir/collective_patterns.cpp.o"
  "CMakeFiles/collective_patterns.dir/collective_patterns.cpp.o.d"
  "collective_patterns"
  "collective_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
