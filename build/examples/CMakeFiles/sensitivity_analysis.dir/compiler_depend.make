# Empty compiler generated dependencies file for sensitivity_analysis.
# This may be replaced when dependencies are built.
