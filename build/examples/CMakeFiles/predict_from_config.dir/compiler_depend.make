# Empty compiler generated dependencies file for predict_from_config.
# This may be replaced when dependencies are built.
