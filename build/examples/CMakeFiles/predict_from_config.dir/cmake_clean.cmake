file(REMOVE_RECURSE
  "CMakeFiles/predict_from_config.dir/predict_from_config.cpp.o"
  "CMakeFiles/predict_from_config.dir/predict_from_config.cpp.o.d"
  "predict_from_config"
  "predict_from_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_from_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
