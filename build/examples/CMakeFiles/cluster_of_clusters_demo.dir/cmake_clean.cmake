file(REMOVE_RECURSE
  "CMakeFiles/cluster_of_clusters_demo.dir/cluster_of_clusters_demo.cpp.o"
  "CMakeFiles/cluster_of_clusters_demo.dir/cluster_of_clusters_demo.cpp.o.d"
  "cluster_of_clusters_demo"
  "cluster_of_clusters_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_of_clusters_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
