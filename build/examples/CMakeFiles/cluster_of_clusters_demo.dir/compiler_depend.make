# Empty compiler generated dependencies file for cluster_of_clusters_demo.
# This may be replaced when dependencies are built.
