file(REMOVE_RECURSE
  "CMakeFiles/test_latency_distribution.dir/test_latency_distribution.cpp.o"
  "CMakeFiles/test_latency_distribution.dir/test_latency_distribution.cpp.o.d"
  "test_latency_distribution"
  "test_latency_distribution.pdb"
  "test_latency_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
