# Empty dependencies file for test_mm1.
# This may be replaced when dependencies are built.
