file(REMOVE_RECURSE
  "CMakeFiles/test_mm1.dir/test_mm1.cpp.o"
  "CMakeFiles/test_mm1.dir/test_mm1.cpp.o.d"
  "test_mm1"
  "test_mm1.pdb"
  "test_mm1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
