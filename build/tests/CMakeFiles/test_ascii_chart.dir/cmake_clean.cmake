file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_chart.dir/test_ascii_chart.cpp.o"
  "CMakeFiles/test_ascii_chart.dir/test_ascii_chart.cpp.o.d"
  "test_ascii_chart"
  "test_ascii_chart.pdb"
  "test_ascii_chart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
