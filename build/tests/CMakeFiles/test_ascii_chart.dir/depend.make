# Empty dependencies file for test_ascii_chart.
# This may be replaced when dependencies are built.
