# Empty compiler generated dependencies file for test_job_workload.
# This may be replaced when dependencies are built.
