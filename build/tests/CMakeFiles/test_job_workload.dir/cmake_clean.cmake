file(REMOVE_RECURSE
  "CMakeFiles/test_job_workload.dir/test_job_workload.cpp.o"
  "CMakeFiles/test_job_workload.dir/test_job_workload.cpp.o.d"
  "test_job_workload"
  "test_job_workload.pdb"
  "test_job_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
