file(REMOVE_RECURSE
  "CMakeFiles/test_arrival_rates.dir/test_arrival_rates.cpp.o"
  "CMakeFiles/test_arrival_rates.dir/test_arrival_rates.cpp.o.d"
  "test_arrival_rates"
  "test_arrival_rates.pdb"
  "test_arrival_rates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrival_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
