# Empty dependencies file for test_arrival_rates.
# This may be replaced when dependencies are built.
