file(REMOVE_RECURSE
  "CMakeFiles/test_switch_fabric_sim.dir/test_switch_fabric_sim.cpp.o"
  "CMakeFiles/test_switch_fabric_sim.dir/test_switch_fabric_sim.cpp.o.d"
  "test_switch_fabric_sim"
  "test_switch_fabric_sim.pdb"
  "test_switch_fabric_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_fabric_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
