# Empty compiler generated dependencies file for test_switch_fabric_sim.
# This may be replaced when dependencies are built.
