file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_pattern.dir/test_traffic_pattern.cpp.o"
  "CMakeFiles/test_traffic_pattern.dir/test_traffic_pattern.cpp.o.d"
  "test_traffic_pattern"
  "test_traffic_pattern.pdb"
  "test_traffic_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
