# Empty dependencies file for test_traffic_pattern.
# This may be replaced when dependencies are built.
