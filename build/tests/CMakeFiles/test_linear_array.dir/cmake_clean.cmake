file(REMOVE_RECURSE
  "CMakeFiles/test_linear_array.dir/test_linear_array.cpp.o"
  "CMakeFiles/test_linear_array.dir/test_linear_array.cpp.o.d"
  "test_linear_array"
  "test_linear_array.pdb"
  "test_linear_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
