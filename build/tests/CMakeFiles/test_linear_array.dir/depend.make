# Empty dependencies file for test_linear_array.
# This may be replaced when dependencies are built.
