file(REMOVE_RECURSE
  "CMakeFiles/test_switch_tree.dir/test_switch_tree.cpp.o"
  "CMakeFiles/test_switch_tree.dir/test_switch_tree.cpp.o.d"
  "test_switch_tree"
  "test_switch_tree.pdb"
  "test_switch_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
