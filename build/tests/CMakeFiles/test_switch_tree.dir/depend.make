# Empty dependencies file for test_switch_tree.
# This may be replaced when dependencies are built.
