# Empty compiler generated dependencies file for test_hmcs_fabric.
# This may be replaced when dependencies are built.
