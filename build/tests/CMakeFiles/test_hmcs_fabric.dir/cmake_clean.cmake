file(REMOVE_RECURSE
  "CMakeFiles/test_hmcs_fabric.dir/test_hmcs_fabric.cpp.o"
  "CMakeFiles/test_hmcs_fabric.dir/test_hmcs_fabric.cpp.o.d"
  "test_hmcs_fabric"
  "test_hmcs_fabric.pdb"
  "test_hmcs_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmcs_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
