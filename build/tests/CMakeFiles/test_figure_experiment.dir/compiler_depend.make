# Empty compiler generated dependencies file for test_figure_experiment.
# This may be replaced when dependencies are built.
