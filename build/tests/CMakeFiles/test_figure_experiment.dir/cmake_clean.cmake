file(REMOVE_RECURSE
  "CMakeFiles/test_figure_experiment.dir/test_figure_experiment.cpp.o"
  "CMakeFiles/test_figure_experiment.dir/test_figure_experiment.cpp.o.d"
  "test_figure_experiment"
  "test_figure_experiment.pdb"
  "test_figure_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
