file(REMOVE_RECURSE
  "CMakeFiles/test_warmup.dir/test_warmup.cpp.o"
  "CMakeFiles/test_warmup.dir/test_warmup.cpp.o.d"
  "test_warmup"
  "test_warmup.pdb"
  "test_warmup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
