# Empty dependencies file for test_cluster_of_clusters.
# This may be replaced when dependencies are built.
