file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_of_clusters.dir/test_cluster_of_clusters.cpp.o"
  "CMakeFiles/test_cluster_of_clusters.dir/test_cluster_of_clusters.cpp.o.d"
  "test_cluster_of_clusters"
  "test_cluster_of_clusters.pdb"
  "test_cluster_of_clusters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_of_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
