file(REMOVE_RECURSE
  "CMakeFiles/test_service_time.dir/test_service_time.cpp.o"
  "CMakeFiles/test_service_time.dir/test_service_time.cpp.o.d"
  "test_service_time"
  "test_service_time.pdb"
  "test_service_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
