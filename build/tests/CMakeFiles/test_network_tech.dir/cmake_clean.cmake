file(REMOVE_RECURSE
  "CMakeFiles/test_network_tech.dir/test_network_tech.cpp.o"
  "CMakeFiles/test_network_tech.dir/test_network_tech.cpp.o.d"
  "test_network_tech"
  "test_network_tech.pdb"
  "test_network_tech[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
