# Empty dependencies file for test_network_tech.
# This may be replaced when dependencies are built.
