file(REMOVE_RECURSE
  "CMakeFiles/test_multicluster_sim.dir/test_multicluster_sim.cpp.o"
  "CMakeFiles/test_multicluster_sim.dir/test_multicluster_sim.cpp.o.d"
  "test_multicluster_sim"
  "test_multicluster_sim.pdb"
  "test_multicluster_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
