# Empty dependencies file for test_multicluster_sim.
# This may be replaced when dependencies are built.
