file(REMOVE_RECURSE
  "CMakeFiles/test_mva.dir/test_mva.cpp.o"
  "CMakeFiles/test_mva.dir/test_mva.cpp.o.d"
  "test_mva"
  "test_mva.pdb"
  "test_mva[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
