# Empty dependencies file for test_routing_probability.
# This may be replaced when dependencies are built.
