file(REMOVE_RECURSE
  "CMakeFiles/test_routing_probability.dir/test_routing_probability.cpp.o"
  "CMakeFiles/test_routing_probability.dir/test_routing_probability.cpp.o.d"
  "test_routing_probability"
  "test_routing_probability.pdb"
  "test_routing_probability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
