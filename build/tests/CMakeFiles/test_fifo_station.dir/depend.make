# Empty dependencies file for test_fifo_station.
# This may be replaced when dependencies are built.
