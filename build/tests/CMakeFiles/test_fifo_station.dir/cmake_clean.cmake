file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_station.dir/test_fifo_station.cpp.o"
  "CMakeFiles/test_fifo_station.dir/test_fifo_station.cpp.o.d"
  "test_fifo_station"
  "test_fifo_station.pdb"
  "test_fifo_station[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
