file(REMOVE_RECURSE
  "CMakeFiles/test_message_size.dir/test_message_size.cpp.o"
  "CMakeFiles/test_message_size.dir/test_message_size.cpp.o.d"
  "test_message_size"
  "test_message_size.pdb"
  "test_message_size[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
