# Empty dependencies file for test_message_size.
# This may be replaced when dependencies are built.
