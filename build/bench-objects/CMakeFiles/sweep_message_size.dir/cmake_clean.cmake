file(REMOVE_RECURSE
  "../bench/sweep_message_size"
  "../bench/sweep_message_size.pdb"
  "CMakeFiles/sweep_message_size.dir/sweep_message_size.cpp.o"
  "CMakeFiles/sweep_message_size.dir/sweep_message_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
