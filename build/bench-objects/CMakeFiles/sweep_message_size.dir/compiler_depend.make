# Empty compiler generated dependencies file for sweep_message_size.
# This may be replaced when dependencies are built.
