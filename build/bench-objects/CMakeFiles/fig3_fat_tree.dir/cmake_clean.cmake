file(REMOVE_RECURSE
  "../bench/fig3_fat_tree"
  "../bench/fig3_fat_tree.pdb"
  "CMakeFiles/fig3_fat_tree.dir/fig3_fat_tree.cpp.o"
  "CMakeFiles/fig3_fat_tree.dir/fig3_fat_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
