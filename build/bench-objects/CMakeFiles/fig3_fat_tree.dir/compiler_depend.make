# Empty compiler generated dependencies file for fig3_fat_tree.
# This may be replaced when dependencies are built.
