# Empty dependencies file for fig5_nonblocking_case2.
# This may be replaced when dependencies are built.
