file(REMOVE_RECURSE
  "../bench/fig5_nonblocking_case2"
  "../bench/fig5_nonblocking_case2.pdb"
  "CMakeFiles/fig5_nonblocking_case2.dir/fig5_nonblocking_case2.cpp.o"
  "CMakeFiles/fig5_nonblocking_case2.dir/fig5_nonblocking_case2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nonblocking_case2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
