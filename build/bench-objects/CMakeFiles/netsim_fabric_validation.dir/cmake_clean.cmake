file(REMOVE_RECURSE
  "../bench/netsim_fabric_validation"
  "../bench/netsim_fabric_validation.pdb"
  "CMakeFiles/netsim_fabric_validation.dir/netsim_fabric_validation.cpp.o"
  "CMakeFiles/netsim_fabric_validation.dir/netsim_fabric_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_fabric_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
