# Empty compiler generated dependencies file for netsim_fabric_validation.
# This may be replaced when dependencies are built.
