file(REMOVE_RECURSE
  "../bench/ablation_queue_length_rule"
  "../bench/ablation_queue_length_rule.pdb"
  "CMakeFiles/ablation_queue_length_rule.dir/ablation_queue_length_rule.cpp.o"
  "CMakeFiles/ablation_queue_length_rule.dir/ablation_queue_length_rule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_length_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
