# Empty compiler generated dependencies file for ablation_queue_length_rule.
# This may be replaced when dependencies are built.
