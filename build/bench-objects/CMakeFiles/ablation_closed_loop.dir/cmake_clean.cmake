file(REMOVE_RECURSE
  "../bench/ablation_closed_loop"
  "../bench/ablation_closed_loop.pdb"
  "CMakeFiles/ablation_closed_loop.dir/ablation_closed_loop.cpp.o"
  "CMakeFiles/ablation_closed_loop.dir/ablation_closed_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
