# Empty dependencies file for ablation_closed_loop.
# This may be replaced when dependencies are built.
