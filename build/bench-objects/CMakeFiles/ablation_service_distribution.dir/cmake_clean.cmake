file(REMOVE_RECURSE
  "../bench/ablation_service_distribution"
  "../bench/ablation_service_distribution.pdb"
  "CMakeFiles/ablation_service_distribution.dir/ablation_service_distribution.cpp.o"
  "CMakeFiles/ablation_service_distribution.dir/ablation_service_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_service_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
