file(REMOVE_RECURSE
  "../bench/ablation_fixed_point"
  "../bench/ablation_fixed_point.pdb"
  "CMakeFiles/ablation_fixed_point.dir/ablation_fixed_point.cpp.o"
  "CMakeFiles/ablation_fixed_point.dir/ablation_fixed_point.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
