# Empty dependencies file for table1_scenarios.
# This may be replaced when dependencies are built.
