file(REMOVE_RECURSE
  "../bench/table1_scenarios"
  "../bench/table1_scenarios.pdb"
  "CMakeFiles/table1_scenarios.dir/table1_scenarios.cpp.o"
  "CMakeFiles/table1_scenarios.dir/table1_scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
