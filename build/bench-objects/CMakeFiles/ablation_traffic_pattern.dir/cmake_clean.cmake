file(REMOVE_RECURSE
  "../bench/ablation_traffic_pattern"
  "../bench/ablation_traffic_pattern.pdb"
  "CMakeFiles/ablation_traffic_pattern.dir/ablation_traffic_pattern.cpp.o"
  "CMakeFiles/ablation_traffic_pattern.dir/ablation_traffic_pattern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traffic_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
