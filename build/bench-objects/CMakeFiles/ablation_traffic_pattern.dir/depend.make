# Empty dependencies file for ablation_traffic_pattern.
# This may be replaced when dependencies are built.
