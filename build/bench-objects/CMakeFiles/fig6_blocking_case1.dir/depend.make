# Empty dependencies file for fig6_blocking_case1.
# This may be replaced when dependencies are built.
