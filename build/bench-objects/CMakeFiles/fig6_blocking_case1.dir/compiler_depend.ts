# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_blocking_case1.
