file(REMOVE_RECURSE
  "../bench/fig6_blocking_case1"
  "../bench/fig6_blocking_case1.pdb"
  "CMakeFiles/fig6_blocking_case1.dir/fig6_blocking_case1.cpp.o"
  "CMakeFiles/fig6_blocking_case1.dir/fig6_blocking_case1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_blocking_case1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
