# Empty compiler generated dependencies file for coallocation_study.
# This may be replaced when dependencies are built.
