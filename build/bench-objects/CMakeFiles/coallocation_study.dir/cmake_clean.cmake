file(REMOVE_RECURSE
  "../bench/coallocation_study"
  "../bench/coallocation_study.pdb"
  "CMakeFiles/coallocation_study.dir/coallocation_study.cpp.o"
  "CMakeFiles/coallocation_study.dir/coallocation_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coallocation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
