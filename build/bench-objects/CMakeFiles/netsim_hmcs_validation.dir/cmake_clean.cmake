file(REMOVE_RECURSE
  "../bench/netsim_hmcs_validation"
  "../bench/netsim_hmcs_validation.pdb"
  "CMakeFiles/netsim_hmcs_validation.dir/netsim_hmcs_validation.cpp.o"
  "CMakeFiles/netsim_hmcs_validation.dir/netsim_hmcs_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_hmcs_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
