# Empty compiler generated dependencies file for netsim_hmcs_validation.
# This may be replaced when dependencies are built.
