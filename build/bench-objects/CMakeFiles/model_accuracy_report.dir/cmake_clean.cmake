file(REMOVE_RECURSE
  "../bench/model_accuracy_report"
  "../bench/model_accuracy_report.pdb"
  "CMakeFiles/model_accuracy_report.dir/model_accuracy_report.cpp.o"
  "CMakeFiles/model_accuracy_report.dir/model_accuracy_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_accuracy_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
