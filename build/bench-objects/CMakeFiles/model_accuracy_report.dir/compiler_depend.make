# Empty compiler generated dependencies file for model_accuracy_report.
# This may be replaced when dependencies are built.
