# Empty compiler generated dependencies file for ratio_blocking_vs_nonblocking.
# This may be replaced when dependencies are built.
