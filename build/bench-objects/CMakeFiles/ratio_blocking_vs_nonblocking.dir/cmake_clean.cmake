file(REMOVE_RECURSE
  "../bench/ratio_blocking_vs_nonblocking"
  "../bench/ratio_blocking_vs_nonblocking.pdb"
  "CMakeFiles/ratio_blocking_vs_nonblocking.dir/ratio_blocking_vs_nonblocking.cpp.o"
  "CMakeFiles/ratio_blocking_vs_nonblocking.dir/ratio_blocking_vs_nonblocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratio_blocking_vs_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
