
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_lambda.cpp" "bench-objects/CMakeFiles/ablation_lambda.dir/ablation_lambda.cpp.o" "gcc" "bench-objects/CMakeFiles/ablation_lambda.dir/ablation_lambda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/hmcs_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hmcs_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hmcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/hmcs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hmcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
