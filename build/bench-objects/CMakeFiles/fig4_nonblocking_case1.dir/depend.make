# Empty dependencies file for fig4_nonblocking_case1.
# This may be replaced when dependencies are built.
