# Empty compiler generated dependencies file for fig7_blocking_case2.
# This may be replaced when dependencies are built.
