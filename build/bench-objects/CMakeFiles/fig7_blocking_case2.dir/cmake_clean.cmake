file(REMOVE_RECURSE
  "../bench/fig7_blocking_case2"
  "../bench/fig7_blocking_case2.pdb"
  "CMakeFiles/fig7_blocking_case2.dir/fig7_blocking_case2.cpp.o"
  "CMakeFiles/fig7_blocking_case2.dir/fig7_blocking_case2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_blocking_case2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
