
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/src/arrival_rates.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/arrival_rates.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/arrival_rates.cpp.o.d"
  "/root/repo/src/analytic/src/bounds.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/bounds.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/bounds.cpp.o.d"
  "/root/repo/src/analytic/src/cluster_of_clusters.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/cluster_of_clusters.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/cluster_of_clusters.cpp.o.d"
  "/root/repo/src/analytic/src/config_io.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/config_io.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/config_io.cpp.o.d"
  "/root/repo/src/analytic/src/fixed_point.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/fixed_point.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/fixed_point.cpp.o.d"
  "/root/repo/src/analytic/src/latency_distribution.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/latency_distribution.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/latency_distribution.cpp.o.d"
  "/root/repo/src/analytic/src/latency_model.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/latency_model.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/latency_model.cpp.o.d"
  "/root/repo/src/analytic/src/mva.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/mva.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/mva.cpp.o.d"
  "/root/repo/src/analytic/src/network_tech.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/network_tech.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/network_tech.cpp.o.d"
  "/root/repo/src/analytic/src/routing_probability.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/routing_probability.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/routing_probability.cpp.o.d"
  "/root/repo/src/analytic/src/scenario.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/scenario.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/scenario.cpp.o.d"
  "/root/repo/src/analytic/src/serialize.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/serialize.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/serialize.cpp.o.d"
  "/root/repo/src/analytic/src/service_time.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/service_time.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/service_time.cpp.o.d"
  "/root/repo/src/analytic/src/system_config.cpp" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/system_config.cpp.o" "gcc" "src/analytic/CMakeFiles/hmcs_analytic.dir/src/system_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hmcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hmcs_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
