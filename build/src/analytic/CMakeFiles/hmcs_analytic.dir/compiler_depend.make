# Empty compiler generated dependencies file for hmcs_analytic.
# This may be replaced when dependencies are built.
