file(REMOVE_RECURSE
  "CMakeFiles/hmcs_analytic.dir/src/arrival_rates.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/arrival_rates.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/bounds.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/bounds.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/cluster_of_clusters.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/cluster_of_clusters.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/config_io.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/config_io.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/fixed_point.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/fixed_point.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/latency_distribution.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/latency_distribution.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/latency_model.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/latency_model.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/mva.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/mva.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/network_tech.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/network_tech.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/routing_probability.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/routing_probability.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/scenario.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/scenario.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/serialize.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/serialize.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/service_time.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/service_time.cpp.o.d"
  "CMakeFiles/hmcs_analytic.dir/src/system_config.cpp.o"
  "CMakeFiles/hmcs_analytic.dir/src/system_config.cpp.o.d"
  "libhmcs_analytic.a"
  "libhmcs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
