file(REMOVE_RECURSE
  "libhmcs_analytic.a"
)
