file(REMOVE_RECURSE
  "CMakeFiles/hmcs_simcore.dir/src/batch_means.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/batch_means.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/event_queue.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/fifo_station.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/fifo_station.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/histogram.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/histogram.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/rng.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/rng.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/simulation.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/simulation.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/tally.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/tally.cpp.o.d"
  "CMakeFiles/hmcs_simcore.dir/src/warmup.cpp.o"
  "CMakeFiles/hmcs_simcore.dir/src/warmup.cpp.o.d"
  "libhmcs_simcore.a"
  "libhmcs_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
