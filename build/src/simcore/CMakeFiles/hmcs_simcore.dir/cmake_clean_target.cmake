file(REMOVE_RECURSE
  "libhmcs_simcore.a"
)
