# Empty compiler generated dependencies file for hmcs_simcore.
# This may be replaced when dependencies are built.
