
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/src/batch_means.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/batch_means.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/batch_means.cpp.o.d"
  "/root/repo/src/simcore/src/event_queue.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/event_queue.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/event_queue.cpp.o.d"
  "/root/repo/src/simcore/src/fifo_station.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/fifo_station.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/fifo_station.cpp.o.d"
  "/root/repo/src/simcore/src/histogram.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/histogram.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/histogram.cpp.o.d"
  "/root/repo/src/simcore/src/rng.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/rng.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/rng.cpp.o.d"
  "/root/repo/src/simcore/src/simulation.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/simulation.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/simulation.cpp.o.d"
  "/root/repo/src/simcore/src/tally.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/tally.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/tally.cpp.o.d"
  "/root/repo/src/simcore/src/warmup.cpp" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/warmup.cpp.o" "gcc" "src/simcore/CMakeFiles/hmcs_simcore.dir/src/warmup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hmcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
