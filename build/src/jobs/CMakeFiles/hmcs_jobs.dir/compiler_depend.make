# Empty compiler generated dependencies file for hmcs_jobs.
# This may be replaced when dependencies are built.
