file(REMOVE_RECURSE
  "CMakeFiles/hmcs_jobs.dir/src/job_workload.cpp.o"
  "CMakeFiles/hmcs_jobs.dir/src/job_workload.cpp.o.d"
  "CMakeFiles/hmcs_jobs.dir/src/scheduler.cpp.o"
  "CMakeFiles/hmcs_jobs.dir/src/scheduler.cpp.o.d"
  "libhmcs_jobs.a"
  "libhmcs_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
