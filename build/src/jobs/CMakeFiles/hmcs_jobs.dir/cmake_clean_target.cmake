file(REMOVE_RECURSE
  "libhmcs_jobs.a"
)
