file(REMOVE_RECURSE
  "CMakeFiles/hmcs_topology.dir/src/bisection.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/bisection.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/fat_tree.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/fat_tree.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/graph.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/graph.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/linear_array.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/linear_array.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/maxflow.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/maxflow.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/switch_tree.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/switch_tree.cpp.o.d"
  "CMakeFiles/hmcs_topology.dir/src/torus.cpp.o"
  "CMakeFiles/hmcs_topology.dir/src/torus.cpp.o.d"
  "libhmcs_topology.a"
  "libhmcs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
