# Empty compiler generated dependencies file for hmcs_topology.
# This may be replaced when dependencies are built.
