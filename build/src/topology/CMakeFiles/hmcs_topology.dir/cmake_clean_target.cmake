file(REMOVE_RECURSE
  "libhmcs_topology.a"
)
