
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/src/bisection.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/bisection.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/bisection.cpp.o.d"
  "/root/repo/src/topology/src/fat_tree.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/fat_tree.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/fat_tree.cpp.o.d"
  "/root/repo/src/topology/src/graph.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/graph.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/graph.cpp.o.d"
  "/root/repo/src/topology/src/linear_array.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/linear_array.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/linear_array.cpp.o.d"
  "/root/repo/src/topology/src/maxflow.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/maxflow.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/maxflow.cpp.o.d"
  "/root/repo/src/topology/src/switch_tree.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/switch_tree.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/switch_tree.cpp.o.d"
  "/root/repo/src/topology/src/torus.cpp" "src/topology/CMakeFiles/hmcs_topology.dir/src/torus.cpp.o" "gcc" "src/topology/CMakeFiles/hmcs_topology.dir/src/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hmcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
