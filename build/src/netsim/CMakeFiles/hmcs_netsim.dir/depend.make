# Empty dependencies file for hmcs_netsim.
# This may be replaced when dependencies are built.
