file(REMOVE_RECURSE
  "CMakeFiles/hmcs_netsim.dir/src/hmcs_fabric.cpp.o"
  "CMakeFiles/hmcs_netsim.dir/src/hmcs_fabric.cpp.o.d"
  "CMakeFiles/hmcs_netsim.dir/src/routing.cpp.o"
  "CMakeFiles/hmcs_netsim.dir/src/routing.cpp.o.d"
  "CMakeFiles/hmcs_netsim.dir/src/switch_fabric_sim.cpp.o"
  "CMakeFiles/hmcs_netsim.dir/src/switch_fabric_sim.cpp.o.d"
  "libhmcs_netsim.a"
  "libhmcs_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
