file(REMOVE_RECURSE
  "libhmcs_netsim.a"
)
