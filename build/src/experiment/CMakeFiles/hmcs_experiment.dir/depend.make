# Empty dependencies file for hmcs_experiment.
# This may be replaced when dependencies are built.
