file(REMOVE_RECURSE
  "CMakeFiles/hmcs_experiment.dir/src/figure_experiment.cpp.o"
  "CMakeFiles/hmcs_experiment.dir/src/figure_experiment.cpp.o.d"
  "CMakeFiles/hmcs_experiment.dir/src/replication.cpp.o"
  "CMakeFiles/hmcs_experiment.dir/src/replication.cpp.o.d"
  "libhmcs_experiment.a"
  "libhmcs_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
