file(REMOVE_RECURSE
  "libhmcs_experiment.a"
)
