file(REMOVE_RECURSE
  "libhmcs_sim.a"
)
