# Empty compiler generated dependencies file for hmcs_sim.
# This may be replaced when dependencies are built.
