file(REMOVE_RECURSE
  "CMakeFiles/hmcs_sim.dir/src/multicluster_sim.cpp.o"
  "CMakeFiles/hmcs_sim.dir/src/multicluster_sim.cpp.o.d"
  "CMakeFiles/hmcs_sim.dir/src/serialize.cpp.o"
  "CMakeFiles/hmcs_sim.dir/src/serialize.cpp.o.d"
  "CMakeFiles/hmcs_sim.dir/src/trace.cpp.o"
  "CMakeFiles/hmcs_sim.dir/src/trace.cpp.o.d"
  "libhmcs_sim.a"
  "libhmcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
