file(REMOVE_RECURSE
  "CMakeFiles/hmcs_workload.dir/src/message_size.cpp.o"
  "CMakeFiles/hmcs_workload.dir/src/message_size.cpp.o.d"
  "CMakeFiles/hmcs_workload.dir/src/traffic_pattern.cpp.o"
  "CMakeFiles/hmcs_workload.dir/src/traffic_pattern.cpp.o.d"
  "libhmcs_workload.a"
  "libhmcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
