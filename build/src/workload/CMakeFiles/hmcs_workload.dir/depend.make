# Empty dependencies file for hmcs_workload.
# This may be replaced when dependencies are built.
