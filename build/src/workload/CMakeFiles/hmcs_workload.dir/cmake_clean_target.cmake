file(REMOVE_RECURSE
  "libhmcs_workload.a"
)
