# Empty dependencies file for hmcs_util.
# This may be replaced when dependencies are built.
