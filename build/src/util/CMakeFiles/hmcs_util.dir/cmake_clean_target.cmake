file(REMOVE_RECURSE
  "libhmcs_util.a"
)
