
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/ascii_chart.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/ascii_chart.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/ascii_chart.cpp.o.d"
  "/root/repo/src/util/src/cli.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/cli.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/cli.cpp.o.d"
  "/root/repo/src/util/src/csv.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/csv.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/csv.cpp.o.d"
  "/root/repo/src/util/src/json.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/json.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/json.cpp.o.d"
  "/root/repo/src/util/src/keyvalue.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/keyvalue.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/keyvalue.cpp.o.d"
  "/root/repo/src/util/src/string_util.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/string_util.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/string_util.cpp.o.d"
  "/root/repo/src/util/src/table.cpp" "src/util/CMakeFiles/hmcs_util.dir/src/table.cpp.o" "gcc" "src/util/CMakeFiles/hmcs_util.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
