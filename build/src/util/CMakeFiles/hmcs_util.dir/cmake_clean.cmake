file(REMOVE_RECURSE
  "CMakeFiles/hmcs_util.dir/src/ascii_chart.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/ascii_chart.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/cli.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/cli.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/csv.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/csv.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/json.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/json.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/keyvalue.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/keyvalue.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/string_util.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/string_util.cpp.o.d"
  "CMakeFiles/hmcs_util.dir/src/table.cpp.o"
  "CMakeFiles/hmcs_util.dir/src/table.cpp.o.d"
  "libhmcs_util.a"
  "libhmcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
