// hmcs_run — the config-driven sweep front-end: load a sweep config
// (JSON or key=value), execute it on the work-stealing runner, and emit
// the standard artifact set. Any study expressible as axes × backends
// runs from here without writing a new binary; the bespoke harnesses in
// bench/ remain for the layouts that need custom rendering.
//
//   $ ./hmcs_run --config configs/sweeps/smoke_analytic.json
//   $ ./hmcs_run --config sweep.json --threads 8 --csv-dir out/
//   $ ./hmcs_run --config sweep.json --journal run.jsonl
//       --on-error collect-all --retries 2 --deadline-ms 60000
//   $ ./hmcs_run --config sweep.json --resume run.jsonl   # after ^C
//
// Results are bit-identical for any --threads value: per-point seeds
// are fixed at expansion time and each grid cell writes its own slot.
// With --journal, completed cells are checkpointed as they finish and
// SIGINT exits cleanly (exit 130) after flushing; --resume skips the
// journaled cells and the merged report is byte-identical to an
// uninterrupted run (docs/ROBUSTNESS.md).
//
// Exit codes: 0 success (degraded cells are still success — they carry
// flagged numbers), 1 configuration/usage errors, 2 completed with
// failed or timed-out cells, 130 interrupted by SIGINT.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/obs/export.hpp"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/journal.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/runner/sweep_report.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/cli.hpp"

namespace {

// SIGINT → one relaxed atomic store (async-signal-safe); the runner's
// workers observe it within one cell claim and the sims within a few
// thousand events.
hmcs::util::CancelToken g_interrupt;

extern "C" void handle_sigint(int) { g_interrupt.cancel(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace hmcs;

  CliParser cli("hmcs_run", "run a declarative sweep from a config file");
  cli.add_option("config", "sweep config path (.json or key=value)", "");
  cli.add_option("threads", "worker threads (0 = hardware concurrency; "
                            "overrides the config when given)", "");
  cli.add_option("csv-dir", "directory for the CSV series", "");
  cli.add_option("json-dir", "directory for the JSON record", "");
  cli.add_option("journal", "JSON-lines checkpoint journal to write "
                            "(enables clean ^C + --resume)", "");
  cli.add_option("resume", "journal from an interrupted run: skip its "
                           "completed cells and append to it", "");
  cli.add_option("on-error", "fail-fast | collect-all (overrides the "
                             "config when given)", "");
  cli.add_option("retries", "max attempts per cell, >= 1 (overrides the "
                            "config when given)", "");
  cli.add_option("deadline-ms", "per-cell wall-clock budget in ms, 0 = "
                                "none (overrides the config when given)", "");
  cli.add_option("batch", "cells per batched backend call, 0 = per-cell "
                          "(overrides the config when given)", "");
  cli.add_option("obs-out", "directory for observability artifacts "
                            "(metrics.json, metrics.csv, trace.json)", "");
  cli.add_option("obs-sample-us",
                 "sim-time sampling period for counter tracks (us)", "200");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::string config_path = cli.get_string("config");
    if (config_path.empty()) {
      std::cerr << "error: --config is required\n\n" << cli.help_text();
      return 1;
    }

    const std::string obs_dir = cli.get_string("obs-out");
    runner::SweepLoadOptions load_options;
    if (!obs_dir.empty()) {
      load_options.obs_sample_interval_us = cli.get_double("obs-sample-us");
    }
    runner::SweepRunConfig run = runner::load_sweep_config(config_path,
                                                           load_options);

    runner::RunnerOptions options;
    options.threads = run.threads;
    options.on_error = run.on_error;
    options.max_attempts = run.max_attempts;
    options.cell_deadline_ms = run.cell_deadline_ms;
    options.degraded_utilization = run.degraded_utilization;
    options.batch_cells = run.batch_cells;
    if (!cli.get_string("threads").empty()) {
      options.threads = static_cast<std::uint32_t>(cli.get_uint("threads"));
    }
    if (!cli.get_string("on-error").empty()) {
      options.on_error =
          runner::parse_failure_policy(cli.get_string("on-error"));
    }
    if (!cli.get_string("retries").empty()) {
      options.max_attempts =
          static_cast<std::uint32_t>(cli.get_uint("retries"));
      require(options.max_attempts >= 1, "hmcs_run: --retries must be >= 1");
    }
    if (!cli.get_string("deadline-ms").empty()) {
      options.cell_deadline_ms = cli.get_double("deadline-ms");
      require(options.cell_deadline_ms >= 0.0,
              "hmcs_run: --deadline-ms must be >= 0");
    }
    if (!cli.get_string("batch").empty()) {
      options.batch_cells = static_cast<std::uint32_t>(cli.get_uint("batch"));
    }
    std::shared_ptr<obs::TraceSession> trace;
    if (!obs_dir.empty()) {
      trace = std::make_shared<obs::TraceSession>();
      options.trace = trace;
    }

    // Checkpoint/resume wiring. --resume implies journaling to the same
    // file (append; later records win on load).
    std::string journal_path = cli.get_string("journal");
    const std::string resume_path = cli.get_string("resume");
    runner::SweepJournal resumed;
    if (!resume_path.empty()) {
      resumed = runner::load_sweep_journal(resume_path);
      options.resume = &resumed;
      if (journal_path.empty()) journal_path = resume_path;
      std::cerr << "resuming: " << resumed.completed() << " of "
                << resumed.cells.size() << " cells already journaled\n";
    }
    std::unique_ptr<runner::JournalWriter> journal;
    if (!journal_path.empty()) {
      const std::vector<runner::SweepPoint> points = expand_sweep(run.spec);
      runner::JournalWriter::Shape shape;
      shape.id = run.spec.id;
      shape.points = points.size();
      for (const auto& backend : run.backends) {
        shape.backend_names.push_back(backend->name());
      }
      journal = std::make_unique<runner::JournalWriter>(
          journal_path, shape, /*append=*/journal_path == resume_path);
      options.journal = journal.get();
    }

    options.cancel = &g_interrupt;
    std::signal(SIGINT, handle_sigint);

    const runner::SweepResult result =
        runner::run_sweep(run.spec, run.backends, options);
    runner::print_sweep_report(std::cout, result, cli.get_string("csv-dir"),
                               cli.get_string("json-dir"));

    if (!obs_dir.empty()) {
      HMCS_OBS_GAUGE_SET("obs.trace.dropped_events",
                         static_cast<double>(trace->dropped_count()));
      obs::write_run_artifacts(obs_dir, obs::Registry::global().snapshot(),
                               trace.get());
      std::cout << "observability artifacts written to " << obs_dir
                << " (open trace.json at https://ui.perfetto.dev)\n";
    }

    if (g_interrupt.cancelled()) {
      const std::size_t remaining =
          result.count_status(runner::CellStatus::kSkipped);
      std::cerr << "interrupted: " << remaining << " of "
                << result.cells.size() << " cells not run";
      if (journal != nullptr) {
        std::cerr << "; resume with --resume " << journal->path();
      }
      std::cerr << "\n";
      return 130;
    }
    if (result.count_status(runner::CellStatus::kFailed) +
            result.count_status(runner::CellStatus::kTimedOut) >
        0) {
      std::cerr << "completed with failures (see status columns)\n";
      return 2;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
