// hmcs_run — the config-driven sweep front-end: load a sweep config
// (JSON or key=value), execute it on the work-stealing runner, and emit
// the standard artifact set. Any study expressible as axes × backends
// runs from here without writing a new binary; the bespoke harnesses in
// bench/ remain for the layouts that need custom rendering.
//
//   $ ./hmcs_run --config configs/sweeps/smoke_analytic.json
//   $ ./hmcs_run --config sweep.json --threads 8 --csv-dir out/
//
// Results are bit-identical for any --threads value: per-point seeds
// are fixed at expansion time and each grid cell writes its own slot.

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/obs/export.hpp"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/runner/sweep_report.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;

  CliParser cli("hmcs_run", "run a declarative sweep from a config file");
  cli.add_option("config", "sweep config path (.json or key=value)", "");
  cli.add_option("threads", "worker threads (0 = hardware concurrency; "
                            "overrides the config when given)", "");
  cli.add_option("csv-dir", "directory for the CSV series", "");
  cli.add_option("json-dir", "directory for the JSON record", "");
  cli.add_option("obs-out", "directory for observability artifacts "
                            "(metrics.json, metrics.csv, trace.json)", "");
  cli.add_option("obs-sample-us",
                 "sim-time sampling period for counter tracks (us)", "200");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::string config_path = cli.get_string("config");
    if (config_path.empty()) {
      std::cerr << "error: --config is required\n\n" << cli.help_text();
      return 1;
    }

    const std::string obs_dir = cli.get_string("obs-out");
    runner::SweepLoadOptions load_options;
    if (!obs_dir.empty()) {
      load_options.obs_sample_interval_us = cli.get_double("obs-sample-us");
    }
    runner::SweepRunConfig run = runner::load_sweep_config(config_path,
                                                           load_options);

    runner::RunnerOptions options;
    options.threads = run.threads;
    if (!cli.get_string("threads").empty()) {
      options.threads = static_cast<std::uint32_t>(cli.get_uint("threads"));
    }
    std::shared_ptr<obs::TraceSession> trace;
    if (!obs_dir.empty()) {
      trace = std::make_shared<obs::TraceSession>();
      options.trace = trace;
    }

    const runner::SweepResult result =
        runner::run_sweep(run.spec, run.backends, options);
    runner::print_sweep_report(std::cout, result, cli.get_string("csv-dir"),
                               cli.get_string("json-dir"));

    if (!obs_dir.empty()) {
      HMCS_OBS_GAUGE_SET("obs.trace.dropped_events",
                         static_cast<double>(trace->dropped_count()));
      obs::write_run_artifacts(obs_dir, obs::Registry::global().snapshot(),
                               trace.get());
      std::cout << "observability artifacts written to " << obs_dir
                << " (open trace.json at https://ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
