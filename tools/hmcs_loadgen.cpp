// hmcs_loadgen — closed-loop load generator and checker for hmcs_serve.
// Drives a cold pass (every key once, cache empty), then warm passes
// (the same keys repeated), over N parallel connections, and reports
// p50/p95/p99/max reply latencies plus the warm/cold speedup. Because warm
// requests reuse the cold ids, replies must be byte-identical to the
// cold ones — the daemon's cache contract — and any mismatch fails the
// run. Optional assertions (--min-hit-rate, --min-warm-speedup) turn it
// into the CI smoke checker (scripts/ci_serve_smoke.sh).
//
//   $ ./hmcs_loadgen --port 7777
//   $ ./hmcs_loadgen --port 7777 --keys 32 --warm-iterations 16
//   $ ./hmcs_loadgen --port 7777 --min-hit-rate 0.9 --min-warm-speedup 50
//
// Resilience knobs: --retries/--backoff-ms retry transient replies
// ("shed", "timed_out") with exponential backoff and full jitter —
// the client half of the serve tier's backpressure contract.
// --replies-out records the cold replies; --replies-expect asserts
// byte-identity against such a recording, which is how the crash-
// recovery smoke proves a snapshot-restored daemon serves the same
// bytes across a kill -9 (scripts/ci_crash_recovery_smoke.sh).
//
// Exit codes: 0 success, 1 usage errors or unreachable server, 2 a
// reply was wrong or an assertion failed. An unreachable server fails
// fast with a clear message instead of hanging.
//
// The default workload is deliberately heavy for the analytic model —
// exact MVA over a million-node closed network — so a cold evaluation
// costs milliseconds and the cache's value is measurable over TCP.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/net.hpp"

namespace {

using namespace hmcs;

/// One blocking JSON-lines client connection.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(fd_ >= 0, "loadgen: socket() failed");
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    require(::inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1,
            "loadgen: bad host '" + host + "'");
    // errno must be read after connect(), not while building a message
    // argument (unsequenced with the call itself).
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof address) != 0) {
      const std::string reason = std::strerror(errno);
      require(false, "loadgen: cannot reach server at " + host + ":" +
                         std::to_string(port) + ": " + reason +
                         " (is hmcs_serve running?)");
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line and blocks for one reply line. EINTR- and
  /// partial-transfer-safe (util::send_all / util::recv_some).
  std::string round_trip(const std::string& line) {
    std::string frame = line;
    frame.push_back('\n');
    if (!util::send_all(fd_, frame)) {
      const std::string reason = std::strerror(errno);
      require(false, "loadgen: send failed: " + reason);
    }
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string reply = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t received = util::recv_some(fd_, chunk, sizeof chunk);
      require(received > 0, "loadgen: server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(received));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string make_request(std::size_t key, std::uint32_t clusters,
                         std::uint64_t total_nodes, const std::string& model,
                         double deadline_ms, double service_cv2) {
  JsonWriter json;
  json.begin_object();
  std::string id = "k";
  id += std::to_string(key);
  json.key("id").value(id);
  json.key("backend").begin_object();
  json.key("type").value("analytic");
  json.key("model").value(model);
  json.end_object();
  json.key("config").begin_object();
  json.key("clusters").value(clusters);
  json.key("total_nodes").value(total_nodes);
  // Distinct message sizes make distinct cache keys.
  json.key("message_bytes").value(1024.0 + 16.0 * static_cast<double>(key));
  json.key("lambda_per_s").value(250.0);
  // cv^2 = 1 is the canonical default; omitting it keeps the request
  // (and its cache key) identical to a pre-workload one.
  if (service_cv2 != 1.0) {
    json.key("workload").begin_object();
    json.key("service_cv2").value(service_cv2);
    json.end_object();
  }
  json.end_object();
  if (deadline_ms > 0.0) json.key("deadline_ms").value(deadline_ms);
  json.end_object();
  return json.str();
}

/// Pre-sorted for percentile(); one sort serves every quantile query.
std::vector<double> sorted_copy(std::vector<double> us) {
  std::sort(us.begin(), us.end());
  return us;
}

/// q-th percentile of an ascending-sorted sample; NaN when the sample
/// is empty (e.g. a warm pass that never ran), printed as "--".
double percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// "%.1f" rendering with "--" for NaN (empty-sample percentiles).
std::string fmt_us(double value) {
  if (std::isnan(value)) return "--";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", value);
  return buffer;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Replies worth retrying: the server explicitly said "back off"
/// (overload shed, chaos shed, or a deadline-driven timeout) rather
/// than "your request is wrong".
bool is_transient(const std::string& reply) {
  return reply.find("\"status\":\"shed\"") != std::string::npos ||
         reply.find("\"status\":\"timed_out\"") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("hmcs_loadgen", "closed-loop load generator for hmcs_serve");
  cli.add_option("host", "server address", "127.0.0.1");
  cli.add_option("port", "server port", "0");
  cli.add_option("connections", "parallel client connections", "4");
  cli.add_option("keys", "distinct request configurations", "16");
  cli.add_option("warm-iterations", "repeat count per key after the cold "
                                    "pass", "8");
  cli.add_option("clusters", "clusters in the generated configs", "16");
  cli.add_option("total-nodes", "total nodes in the generated configs "
                                "(big = expensive cold evaluation)",
                 "1048576");
  cli.add_option("model", "analytic throttling model", "mva");
  cli.add_option("service-cv2", "service-time cv^2 for the generated "
                                "configs (1 = default workload, omitted "
                                "from the request)", "1");
  cli.add_option("deadline-ms", "per-request deadline (0 = none)", "0");
  cli.add_option("malformed", "malformed lines to send (expect error "
                              "replies)", "0");
  cli.add_option("min-hit-rate", "fail (exit 2) when the cache hit rate "
                                 "ends below this", "-1");
  cli.add_option("min-warm-speedup", "fail (exit 2) when cold_p50/warm_p50 "
                                     "is below this", "-1");
  cli.add_option("retries", "bounded retries per request on transient "
                            "replies (shed, timed_out)", "0");
  cli.add_option("backoff-ms", "retry backoff base: attempt n sleeps "
                               "uniform(0, base * 2^n) ms (full jitter)",
                 "50");
  cli.add_option("replies-out", "record the cold replies to this file "
                                "(one line per key, in key order)", "");
  cli.add_option("replies-expect", "fail (exit 2) unless the cold replies "
                                   "are byte-identical to this recording",
                 "");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::string host = cli.get_string("host");
    const auto port = static_cast<std::uint16_t>(cli.get_uint("port"));
    require(port != 0, "loadgen: --port is required");
    const std::size_t connections =
        std::max<std::size_t>(1, cli.get_uint("connections"));
    const std::size_t keys = std::max<std::size_t>(1, cli.get_uint("keys"));
    const std::size_t warm_iterations = cli.get_uint("warm-iterations");
    const auto clusters = static_cast<std::uint32_t>(cli.get_uint("clusters"));
    const std::uint64_t total_nodes = cli.get_uint("total-nodes");
    const std::string model = cli.get_string("model");
    const double service_cv2 = cli.get_double("service-cv2");
    const double deadline_ms = cli.get_double("deadline-ms");
    const std::size_t retries = cli.get_uint("retries");
    const double backoff_ms = cli.get_double("backoff-ms");
    require(backoff_ms >= 0.0, "loadgen: --backoff-ms must be >= 0");
    const std::string replies_out = cli.get_string("replies-out");
    const std::string replies_expect = cli.get_string("replies-expect");

    std::vector<std::string> requests;
    requests.reserve(keys);
    for (std::size_t key = 0; key < keys; ++key) {
      requests.push_back(make_request(key, clusters, total_nodes, model,
                                      deadline_ms, service_cv2));
    }

    std::vector<std::unique_ptr<Client>> clients;
    for (std::size_t i = 0; i < connections; ++i) {
      clients.push_back(std::make_unique<Client>(host, port));
    }

    // Each connection owns keys i, i+connections, ... — closed loop per
    // connection, all connections in parallel.
    std::vector<std::string> cold_replies(keys);
    std::vector<std::vector<double>> lane_latencies(connections);
    bool byte_identical = true;
    std::atomic<std::uint64_t> total_retries{0};
    std::mutex failure_mutex;
    std::string failure;

    const auto run_pass = [&](bool cold) {
      for (auto& lane : lane_latencies) lane.clear();
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
          try {
            // Per-lane deterministic jitter stream: retries back off by
            // uniform(0, backoff_ms * 2^attempt) — full jitter, so
            // retrying lanes decorrelate instead of re-colliding.
            simcore::Rng jitter(0x6c0adbe11ce5u ^ (c + 1));
            const std::size_t rounds = cold ? 1 : warm_iterations;
            for (std::size_t round = 0; round < rounds; ++round) {
              for (std::size_t key = c; key < keys; key += connections) {
                const double start = now_us();
                std::string reply = clients[c]->round_trip(requests[key]);
                for (std::size_t attempt = 0;
                     attempt < retries && is_transient(reply); ++attempt) {
                  const double cap_ms =
                      backoff_ms *
                      static_cast<double>(
                          1ull << std::min<std::size_t>(attempt, 16));
                  std::this_thread::sleep_for(
                      std::chrono::duration<double, std::milli>(
                          jitter.uniform(0.0, cap_ms)));
                  total_retries.fetch_add(1, std::memory_order_relaxed);
                  reply = clients[c]->round_trip(requests[key]);
                }
                lane_latencies[c].push_back(now_us() - start);
                if (reply.find("\"status\":\"ok\"") == std::string::npos) {
                  const std::scoped_lock lock(failure_mutex);
                  failure = "non-ok reply: " + reply;
                  return;
                }
                if (cold) {
                  cold_replies[key] = reply;
                } else if (reply != cold_replies[key]) {
                  byte_identical = false;
                  const std::scoped_lock lock(failure_mutex);
                  failure = "warm reply differs from cold for key " +
                            std::to_string(key);
                  return;
                }
              }
            }
          } catch (const std::exception& error) {
            const std::scoped_lock lock(failure_mutex);
            failure = error.what();
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      std::vector<double> merged;
      for (const auto& lane : lane_latencies) {
        merged.insert(merged.end(), lane.begin(), lane.end());
      }
      return merged;
    };

    const std::vector<double> cold_us = run_pass(/*cold=*/true);
    if (!failure.empty()) {
      std::cerr << "loadgen: cold pass failed: " << failure << "\n";
      return 2;
    }

    // Cross-process byte-identity: --replies-out records this run's
    // cold replies, --replies-expect asserts against a prior recording.
    // Ids are deterministic ("k<i>"), so a warm-restarted daemon must
    // reproduce the recorded bytes exactly.
    if (!replies_out.empty()) {
      std::ofstream out(replies_out, std::ios::trunc);
      require(out.good(),
              "loadgen: cannot open --replies-out file " + replies_out);
      for (const std::string& reply : cold_replies) out << reply << "\n";
      out.flush();
      require(out.good(),
              "loadgen: failed writing --replies-out file " + replies_out);
    }
    if (!replies_expect.empty()) {
      std::ifstream in(replies_expect);
      require(in.good(),
              "loadgen: cannot open --replies-expect file " + replies_expect);
      std::string expected;
      for (std::size_t key = 0; key < keys; ++key) {
        if (!std::getline(in, expected)) {
          std::cerr << "loadgen: --replies-expect file has only " << key
                    << " lines for " << keys << " keys\n";
          return 2;
        }
        if (expected != cold_replies[key]) {
          byte_identical = false;
          std::cerr << "loadgen: reply for key " << key
                    << " differs from the recorded reply\n  expected: "
                    << expected << "\n  got:      " << cold_replies[key]
                    << "\n";
          return 2;
        }
      }
    }

    const std::vector<double> warm_us =
        warm_iterations > 0 ? run_pass(/*cold=*/false) : std::vector<double>{};
    if (!failure.empty()) {
      std::cerr << "loadgen: warm pass failed: " << failure << "\n";
      return 2;
    }

    // Malformed lines must produce error replies, not closed sockets.
    const std::size_t malformed = cli.get_uint("malformed");
    for (std::size_t i = 0; i < malformed; ++i) {
      const std::string reply =
          clients[0]->round_trip("this is not json #" + std::to_string(i));
      if (reply.find("\"status\":\"error\"") == std::string::npos) {
        std::cerr << "loadgen: malformed line did not yield an error reply: "
                  << reply << "\n";
        return 2;
      }
    }

    const JsonValue stats = parse_json(clients[0]->round_trip(
        R"({"op":"stats"})"));
    const double hits = stats.at("cache").at("hits").as_number();
    const double misses = stats.at("cache").at("misses").as_number();
    const double hit_rate =
        hits + misses > 0.0 ? hits / (hits + misses) : 0.0;

    const std::vector<double> cold_sorted = sorted_copy(cold_us);
    const std::vector<double> warm_sorted = sorted_copy(warm_us);
    const double cold_p50 = percentile(cold_sorted, 0.50);
    const double cold_p95 = percentile(cold_sorted, 0.95);
    const double cold_p99 = percentile(cold_sorted, 0.99);
    const double cold_max = percentile(cold_sorted, 1.0);
    const double warm_p50 = percentile(warm_sorted, 0.50);
    const double warm_p95 = percentile(warm_sorted, 0.95);
    const double warm_p99 = percentile(warm_sorted, 0.99);
    const double warm_max = percentile(warm_sorted, 1.0);
    const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

    std::fprintf(stderr,
                 "loadgen: %zu keys x %zu warm iterations over %zu "
                 "connections\n  cold p50 %s us, p95 %s us, p99 %s us, "
                 "max %s us\n  warm p50 %s us, p95 %s us, p99 %s us, "
                 "max %s us\n  warm speedup (p50) %.1fx, hit rate %.3f, "
                 "byte-identical %s, retries %llu\n",
                 keys, warm_iterations, connections, fmt_us(cold_p50).c_str(),
                 fmt_us(cold_p95).c_str(), fmt_us(cold_p99).c_str(),
                 fmt_us(cold_max).c_str(), fmt_us(warm_p50).c_str(),
                 fmt_us(warm_p95).c_str(), fmt_us(warm_p99).c_str(),
                 fmt_us(warm_max).c_str(), speedup, hit_rate,
                 byte_identical ? "yes" : "no",
                 static_cast<unsigned long long>(
                     total_retries.load(std::memory_order_relaxed)));

    // The server keeps its own HDR latency view (the `stats` op); print
    // it for comparison. Server quantiles exclude client/network time,
    // so they bound ours from below.
    if (const JsonValue* latency = stats.find("latency")) {
      std::fprintf(stderr,
                   "  server-side p50 %.1f us, p90 %.1f us, p99 %.1f us, "
                   "max %.1f us over %.0f requests\n",
                   latency->at("p50_us").as_number(),
                   latency->at("p90_us").as_number(),
                   latency->at("p99_us").as_number(),
                   latency->at("max_us").as_number(),
                   latency->at("count").as_number());
    }

    JsonWriter json;
    json.begin_object();
    json.key("keys").value(static_cast<std::uint64_t>(keys));
    json.key("connections").value(static_cast<std::uint64_t>(connections));
    json.key("warm_iterations")
        .value(static_cast<std::uint64_t>(warm_iterations));
    json.key("cold_p50_us").value(cold_p50);
    json.key("cold_p95_us").value(cold_p95);
    json.key("cold_p99_us").value(cold_p99);
    json.key("cold_max_us").value(cold_max);
    json.key("warm_p50_us").value(warm_p50);
    json.key("warm_p95_us").value(warm_p95);
    json.key("warm_p99_us").value(warm_p99);
    json.key("warm_max_us").value(warm_max);
    json.key("warm_speedup_p50").value(speedup);
    json.key("hit_rate").value(hit_rate);
    json.key("byte_identical").value(byte_identical);
    json.key("retries").value(total_retries.load(std::memory_order_relaxed));
    json.end_object();
    std::cout << json.str() << "\n";

    const double min_hit_rate = cli.get_double("min-hit-rate");
    if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
      std::cerr << "loadgen: hit rate " << hit_rate << " below required "
                << min_hit_rate << "\n";
      return 2;
    }
    const double min_speedup = cli.get_double("min-warm-speedup");
    if (min_speedup >= 0.0 && warm_iterations > 0 && speedup < min_speedup) {
      std::cerr << "loadgen: warm speedup " << speedup << " below required "
                << min_speedup << "\n";
      return 2;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
