// hmcs_top — a polling terminal dashboard over a running hmcs_serve
// daemon. Each tick issues the `stats` admin op (JSON) and renders live
// qps, hit rate, tail latency (rolling RED window), pool saturation,
// and shard occupancy; `--metrics` instead fetches one Prometheus text
// exposition via the `metrics` op and prints it (scrape-debug mode).
//
//   $ ./hmcs_top --port 7777                 # refresh every second
//   $ ./hmcs_top --port 7777 --interval-ms 250
//   $ ./hmcs_top --port 7777 --iterations 1  # one snapshot, no clear
//   $ ./hmcs_top --port 7777 --metrics       # Prometheus text, then exit
//   $ ./hmcs_top --port 7777 --json          # raw stats reply, then exit
//
// Exit codes: 0 success (including Ctrl-C between polls), 1 usage or
// connection errors.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

/// One blocking JSON-lines client connection (same shape as loadgen's).
class Client {
 public:
  Client(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(fd_ >= 0, "hmcs_top: socket() failed");
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    require(::inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1,
            "hmcs_top: bad host '" + host + "'");
    require(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                      sizeof address) == 0,
            "hmcs_top: connect to " + host + ":" + std::to_string(port) +
                " failed: " + std::strerror(errno));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  std::string round_trip(const std::string& line) {
    std::string frame = line;
    frame.push_back('\n');
    std::size_t written = 0;
    while (written < frame.size()) {
      const ssize_t sent = ::send(fd_, frame.data() + written,
                                  frame.size() - written, MSG_NOSIGNAL);
      require(sent > 0, "hmcs_top: send failed");
      written += static_cast<std::size_t>(sent);
    }
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string reply = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t received = ::recv(fd_, chunk, sizeof chunk, 0);
      require(received > 0, "hmcs_top: server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(received));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double number_at(const JsonValue& object, const char* key) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? 0.0 : member->as_number();
}

void render(const JsonValue& stats, double client_qps) {
  const JsonValue& serve = stats.at("serve");
  const JsonValue& cache = stats.at("cache");
  const JsonValue& red = stats.at("red");
  const JsonValue& latency = stats.at("latency");
  const JsonValue& pool = stats.at("pool");

  const double hits = number_at(cache, "hits");
  const double misses = number_at(cache, "misses");
  const double hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  const double queued = number_at(pool, "queued");
  const double limit = number_at(pool, "queue_limit");

  std::printf("hmcs_serve · up %.0f s\n", number_at(stats, "uptime_s"));
  std::printf(
      "requests  %10.0f total   ok %.0f  errors %.0f  timed_out %.0f  "
      "bad %.0f  shed %.0f\n",
      number_at(serve, "requests"), number_at(serve, "ok"),
      number_at(serve, "errors"), number_at(serve, "timed_out"),
      number_at(serve, "bad_requests"), number_at(serve, "shed"));
  std::printf(
      "rate      %10.1f qps (window %.1fs)   client-side %.1f qps   "
      "error rate %.4f\n",
      number_at(red, "rate_per_s"), number_at(red, "window_s"), client_qps,
      number_at(red, "error_rate"));
  std::printf(
      "latency   p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   p99.9 "
      "%8.1f us   max %8.1f us\n",
      number_at(red, "p50_us"), number_at(red, "p90_us"),
      number_at(red, "p99_us"), number_at(red, "p999_us"),
      number_at(red, "max_us"));
  std::printf(
      "lifetime  p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   over %.0f "
      "requests\n",
      number_at(latency, "p50_us"), number_at(latency, "p90_us"),
      number_at(latency, "p99_us"), number_at(latency, "count"));
  std::printf(
      "cache     %10.0f entries   hit rate %.3f   %0.f insertions  %.0f "
      "evictions\n",
      number_at(cache, "entries"), hit_rate, number_at(cache, "insertions"),
      number_at(cache, "evictions"));
  if (const JsonValue* shards = cache.find("shard_entries")) {
    std::printf("shards   ");
    for (const JsonValue& entry : shards->items) {
      std::printf(" %4.0f", entry.as_number());
    }
    std::printf("\n");
  }
  std::printf(
      "pool      %10.0f queued / %.0f limit (%.0f%%)   %.0f threads   "
      "inflight keys %.0f\n",
      queued, limit, limit > 0.0 ? 100.0 * queued / limit : 0.0,
      number_at(pool, "threads"), number_at(stats, "inflight_keys"));
  if (const JsonValue* log = stats.find("access_log")) {
    std::printf("accesslog %10.0f written   %.0f shed\n",
                number_at(*log, "written"), number_at(*log, "shed"));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("hmcs_top", "live terminal dashboard for hmcs_serve");
  cli.add_option("host", "server address", "127.0.0.1");
  cli.add_option("port", "server port", "0");
  cli.add_option("interval-ms", "poll interval", "1000");
  cli.add_option("iterations", "polls before exiting (0 = until Ctrl-C)",
                 "0");
  cli.add_flag("metrics", "print one Prometheus exposition (the `metrics` "
                          "op body) and exit");
  cli.add_flag("json", "print one raw stats reply and exit");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::string host = cli.get_string("host");
    const auto port = static_cast<std::uint16_t>(cli.get_uint("port"));
    require(port != 0, "hmcs_top: --port is required");
    const auto interval_ms = cli.get_uint("interval-ms");
    const std::size_t iterations = cli.get_uint("iterations");

    Client client(host, port);

    if (cli.get_flag("metrics")) {
      const JsonValue reply =
          parse_json(client.round_trip(R"({"op":"metrics"})"));
      require(reply.at("status").as_string() == "ok",
              "hmcs_top: metrics op failed");
      std::cout << reply.at("body").as_string();
      return 0;
    }
    if (cli.get_flag("json")) {
      std::cout << client.round_trip(R"({"op":"stats"})") << "\n";
      return 0;
    }

    double last_requests = -1.0;
    auto last_tick = std::chrono::steady_clock::now();
    for (std::size_t tick = 0; iterations == 0 || tick < iterations; ++tick) {
      const JsonValue stats =
          parse_json(client.round_trip(R"({"op":"stats"})"));
      const auto now = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now - last_tick).count();
      const double requests = number_at(stats.at("serve"), "requests");
      // Client-side qps from the counter delta between our own polls —
      // a cross-check on the server's windowed rate.
      const double client_qps =
          last_requests >= 0.0 && dt > 0.0
              ? (requests - last_requests) / dt
              : 0.0;
      last_requests = requests;
      last_tick = now;

      const bool looping = iterations != 1;
      if (looping && tick > 0) std::printf("\x1b[2J\x1b[H");
      render(stats, client_qps);
      if (iterations == 0 || tick + 1 < iterations) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
