// hmcs_serve — the model-as-a-service daemon: accepts JSON-lines
// queries over TCP (one SystemConfig + backend per line, the sweep
// vocabulary), evaluates them on a work-stealing pool, and answers from
// a sharded LRU result cache with single-flight coalescing of duplicate
// in-flight keys. See docs/SERVING.md for the protocol.
//
//   $ ./hmcs_serve --port 7777
//   $ ./hmcs_serve --port 0            # ephemeral; port printed on stdout
//   $ echo '{"config":{"clusters":8}}' | nc 127.0.0.1 <port>
//
// The first stdout line is "hmcs_serve listening on <host>:<port>" so
// scripts can scrape the bound port. SIGINT drains gracefully: the
// accept loop stops, every accepted request is answered, and the
// process exits 130. Exit codes: 0 clean shutdown request, 1
// configuration errors, 130 SIGINT drain.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/obs/export.hpp"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/serve/chaos.hpp"
#include "hmcs/serve/server.hpp"
#include "hmcs/serve/snapshot.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/cli.hpp"

namespace {

hmcs::util::CancelToken g_interrupt;

extern "C" void handle_sigint(int) { g_interrupt.cancel(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace hmcs;

  CliParser cli("hmcs_serve", "model-as-a-service query daemon");
  cli.add_option("host", "bind address", "127.0.0.1");
  cli.add_option("port", "TCP port (0 = ephemeral, printed on stdout)", "0");
  cli.add_option("threads", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("queue-limit",
                 "max queued requests before shedding (backpressure)",
                 "1024");
  cli.add_option("cache-capacity", "result cache entries", "4096");
  cli.add_option("cache-shards", "result cache shards", "8");
  cli.add_option("default-deadline-ms",
                 "per-request deadline when the request has none (0 = "
                 "none)", "0");
  cli.add_option("obs-out", "directory for observability artifacts "
                            "written at shutdown", "");
  cli.add_option("access-log",
                 "structured JSON-lines access log path (one line per "
                 "request; off-thread, shed-not-block)", "");
  cli.add_option("red-window",
                 "rolling RED window width in seconds (stats op)", "60");
  cli.add_option("cache-snapshot",
                 "durable cache snapshot path: reloaded (tolerantly) at "
                 "startup, written atomically on drain", "");
  cli.add_option("snapshot-interval-ms",
                 "also snapshot the cache every N ms (0 = only on drain)",
                 "0");
  cli.add_option("idle-timeout-ms",
                 "evict a connection with no traffic for this long "
                 "(0 = never)", "0");
  cli.add_option("read-timeout-ms",
                 "evict a connection whose partial request stalls this "
                 "long (0 = never)", "0");
  cli.add_option("max-connections",
                 "concurrent connection cap; beyond it the oldest-idle "
                 "connection is evicted (0 = unlimited)", "0");
  cli.add_option("max-line-bytes",
                 "request lines beyond this get a structured error and "
                 "the connection is dropped", "1048576");
  cli.add_option("chaos-seed", "fault-injection stream seed", "1");
  cli.add_option("chaos-shed-prob",
                 "probability a request is answered 'shed' by fault "
                 "injection", "0");
  cli.add_option("chaos-eval-delay-prob",
                 "probability an evaluation is delayed by fault injection",
                 "0");
  cli.add_option("chaos-eval-delay-ms",
                 "injected evaluation delay in milliseconds", "0");
  cli.add_option("chaos-eval-error-prob",
                 "probability an evaluation fails by fault injection", "0");
  cli.add_option("chaos-snapshot-fail-prob",
                 "probability a snapshot save fails by fault injection",
                 "0");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }

    serve::ServeServer::Options options;
    options.host = cli.get_string("host");
    options.port = static_cast<std::uint16_t>(cli.get_uint("port"));
    options.threads = static_cast<std::uint32_t>(cli.get_uint("threads"));
    options.queue_limit = static_cast<std::size_t>(
        cli.get_uint("queue-limit"));
    options.service.cache.capacity = static_cast<std::size_t>(
        cli.get_uint("cache-capacity"));
    options.service.cache.shards = static_cast<std::size_t>(
        cli.get_uint("cache-shards"));
    options.service.default_deadline_ms =
        cli.get_double("default-deadline-ms");
    require(options.service.default_deadline_ms >= 0.0,
            "hmcs_serve: --default-deadline-ms must be >= 0");
    options.stop = &g_interrupt;

    options.service.red_window_seconds =
        static_cast<unsigned>(cli.get_uint("red-window"));
    require(options.service.red_window_seconds >= 1,
            "hmcs_serve: --red-window must be >= 1");

    options.idle_timeout_ms =
        static_cast<unsigned>(cli.get_uint("idle-timeout-ms"));
    options.read_timeout_ms =
        static_cast<unsigned>(cli.get_uint("read-timeout-ms"));
    options.max_connections =
        static_cast<std::size_t>(cli.get_uint("max-connections"));
    options.max_line_bytes =
        static_cast<std::size_t>(cli.get_uint("max-line-bytes"));
    require(options.max_line_bytes >= 1,
            "hmcs_serve: --max-line-bytes must be >= 1");

    serve::FaultPlan plan;
    plan.seed = cli.get_uint("chaos-seed");
    plan.shed_prob = cli.get_double("chaos-shed-prob");
    plan.eval_delay_prob = cli.get_double("chaos-eval-delay-prob");
    plan.eval_delay_ms = cli.get_double("chaos-eval-delay-ms");
    plan.eval_error_prob = cli.get_double("chaos-eval-error-prob");
    plan.snapshot_fail_prob = cli.get_double("chaos-snapshot-fail-prob");
    for (const double prob :
         {plan.shed_prob, plan.eval_delay_prob, plan.eval_error_prob,
          plan.snapshot_fail_prob}) {
      require(prob >= 0.0 && prob <= 1.0,
              "hmcs_serve: --chaos-*-prob values must be in [0, 1]");
    }
    require(plan.eval_delay_ms >= 0.0,
            "hmcs_serve: --chaos-eval-delay-ms must be >= 0");
    auto chaos = std::make_shared<serve::ChaosInjector>(plan);
    options.service.chaos = chaos;

    const std::string obs_dir = cli.get_string("obs-out");
    std::shared_ptr<obs::TraceSession> trace;
    if (!obs_dir.empty()) {
      trace = std::make_shared<obs::TraceSession>();
      options.service.trace = trace;
    }

    const std::string access_log_path = cli.get_string("access-log");
    if (!access_log_path.empty()) {
      serve::AccessLog::Options log_options;
      log_options.path = access_log_path;
      options.service.access_log =
          std::make_shared<serve::AccessLog>(log_options);
    }

    serve::ServeServer server(options);

    // Warm restart: replay the previous process's snapshot before the
    // socket opens, so the very first request can hit. A corrupt or
    // stale snapshot degrades to a (partially) cold start — skipped
    // lines are counted and reported, never fatal.
    const std::string snapshot_path = cli.get_string("cache-snapshot");
    const auto snapshot_interval_ms =
        static_cast<unsigned>(cli.get_uint("snapshot-interval-ms"));
    require(snapshot_interval_ms == 0 || !snapshot_path.empty(),
            "hmcs_serve: --snapshot-interval-ms needs --cache-snapshot");
    std::unique_ptr<serve::SnapshotWriter> snapshots;
    if (!snapshot_path.empty()) {
      const serve::SnapshotLoadReport loaded = serve::load_cache_snapshot(
          server.service().cache(), snapshot_path,
          {.max_line_bytes = options.max_line_bytes});
      if (loaded.found) {
        std::cerr << "hmcs_serve: cache snapshot loaded from "
                  << snapshot_path << ": " << loaded.loaded << " entries, "
                  << loaded.skipped << " lines skipped";
        if (!loaded.warning.empty()) {
          std::cerr << " (first: " << loaded.warning << ")";
        }
        std::cerr << "\n";
      } else {
        std::cerr << "hmcs_serve: no cache snapshot at " << snapshot_path
                  << "; starting cold\n";
      }
      serve::SnapshotWriter::Options writer_options;
      writer_options.path = snapshot_path;
      writer_options.interval_ms = snapshot_interval_ms;
      writer_options.chaos = chaos.get();
      snapshots = std::make_unique<serve::SnapshotWriter>(
          server.service().cache(), writer_options);
    }

    const std::uint16_t port = server.start();
    std::cout << "hmcs_serve listening on " << options.host << ":" << port
              << "\n";
    std::cout.flush();

    std::signal(SIGINT, handle_sigint);
    server.serve();

    if (snapshots != nullptr) {
      snapshots->stop();
      const serve::SnapshotSaveReport saved = snapshots->save_now();
      if (saved.ok) {
        std::cerr << "hmcs_serve: cache snapshot written to "
                  << snapshot_path << ": " << saved.entries << " entries, "
                  << saved.bytes << " bytes\n";
      } else {
        std::cerr << "hmcs_serve: cache snapshot save failed: "
                  << saved.error << "\n";
      }
    }

    const serve::ServeService::Counters counters =
        server.service().counters();
    const serve::ShardedResultCache::Stats cache =
        server.service().cache_stats();
    std::cerr << "hmcs_serve: drained; " << counters.requests
              << " requests (" << counters.ok << " ok, " << counters.errors
              << " errors, " << counters.timed_out << " timed out, "
              << counters.shed << " shed), cache " << cache.hits << " hits / "
              << cache.misses << " misses, " << counters.coalesced
              << " coalesced\n";

    if (options.service.access_log) {
      options.service.access_log->flush();
      const serve::AccessLog::Stats log = options.service.access_log->stats();
      std::cerr << "access log: " << log.written << " lines written, "
                << log.shed << " shed\n";
    }

    if (!obs_dir.empty()) {
      obs::write_run_artifacts(obs_dir, obs::Registry::global().snapshot(),
                               trace.get());
      std::cerr << "observability artifacts written to " << obs_dir << "\n";
    }
    return g_interrupt.cancelled() ? 130 : 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
