// Ablation: assumption 4 (blocked sources) removed on both sides.
// Open-loop injection against the uncorrected Jackson model (kNone):
// below saturation the two agree and the blocked-source machinery is
// irrelevant; past saturation the open system has no steady state — its
// measured latency keeps growing with the sample count — while the
// closed system self-throttles. This is the raison d'etre of eqs. (6)-(7).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double simulate_ms(const SystemConfig& config, bool closed,
                   std::uint64_t messages, std::uint64_t seed) {
  sim::SimOptions options;
  options.measured_messages = messages;
  options.warmup_messages = messages / 5;
  options.seed = seed;
  options.closed_loop = closed;
  sim::MultiClusterSim simulator(config, options);
  return units::us_to_ms(simulator.run().mean_latency_us);
}

std::string model_cell(const SystemConfig& config, SourceThrottling method) {
  ModelOptions options;
  options.fixed_point.method = method;
  const double latency = predict_latency(config, options).mean_latency_us;
  if (!std::isfinite(latency)) return "unstable";
  return format_fixed(units::us_to_ms(latency), 3);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_closed_loop",
                "assumption 4 on/off: closed vs open sources");
  cli.add_option("messages", "measured deliveries per point", "10000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));

    std::cout << "== Ablation: blocked sources (Case 1, non-blocking, C=4, "
                 "N=32, M=1024) ==\n";
    Table table({"lambda (msg/s)", "Jackson kNone (ms)", "open-loop sim (ms)",
                 "open-loop sim, 4x longer", "closed-loop sim (ms)",
                 "closed model MVA (ms)"});
    for (const double per_s : {50.0, 100.0, 200.0, 400.0}) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking,
          1024.0, 32, units::per_s_to_per_us(per_s));
      table.add_row(
          {format_compact(per_s, 4),
           model_cell(config, SourceThrottling::kNone),
           format_fixed(simulate_ms(config, false, messages, 31), 3),
           format_fixed(simulate_ms(config, false, 4 * messages, 32), 3),
           format_fixed(simulate_ms(config, true, messages, 33), 3),
           model_cell(config, SourceThrottling::kExactMva)});
    }
    std::cout << table;
    std::cout
        << "(where kNone says 'unstable' the open-loop sample mean keeps\n"
           " growing with the run length — compare the two open-loop\n"
           " columns — while closed-loop latency stays put: assumption 4\n"
           " is what gives the saturated system a steady state at all.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
