// End-to-end throughput of the discrete-event engine, reported as a
// machine-readable JSON record (BENCH_engine.json) so CI and the
// performance docs can track events/sec across engine changes.
//
// Two synthetic drivers run on a real Simulator instance:
//  * steady_churn — `sources` self-rescheduling event chains with
//    exponential spacing: the classic hold model, the simulator hot path.
//  * cancel_churn — the same churn, but every firing also arms a
//    far-future timeout and disarms the one it armed on its previous
//    firing: the timer-wheel pattern that stresses cancellation.
//
// Peak pending events is tracked inside the callbacks via
// sim.pending_events(), so the number reflects what the engine actually
// held, not what the driver intended.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

struct RunRecord {
  std::string name;
  std::uint64_t events_executed = 0;
  double wall_seconds = 0.0;
  std::size_t peak_pending = 0;

  double events_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(events_executed) / wall_seconds
               : 0.0;
  }
  double ns_per_event() const {
    return events_executed > 0
               ? wall_seconds * 1e9 / static_cast<double>(events_executed)
               : 0.0;
  }
};

/// `sources` independent self-rescheduling chains; when `cancel_mix` is
/// set, each firing arms a far-future timeout and disarms its previous
/// one, so every event carries one cancel on average.
RunRecord run_driver(const std::string& name, std::uint64_t sources,
                     std::uint64_t target_events, bool cancel_mix,
                     std::uint64_t seed) {
  simcore::Simulator sim;
  simcore::Rng rng(seed);
  RunRecord record;
  record.name = name;

  constexpr double kTimeoutDelay = 1.0e9;
  struct Chain {
    simcore::EventId armed_timeout = 0;
    bool has_timeout = false;
  };
  std::vector<Chain> chains(sources);

  std::uint64_t executed = 0;
  // One callback per source chain, rescheduling itself until the global
  // event budget is spent.
  std::function<void(std::uint64_t)> fire;  // declared for recursion only
  fire = [&](std::uint64_t source) {
    record.peak_pending =
        std::max(record.peak_pending, sim.pending_events() + 1);
    if (++executed >= target_events) {
      sim.stop();
      return;
    }
    if (cancel_mix) {
      Chain& chain = chains[source];
      if (chain.has_timeout) sim.cancel(chain.armed_timeout);
      chain.armed_timeout =
          sim.schedule_after(kTimeoutDelay + rng.uniform(0.0, 1.0), [] {});
      chain.has_timeout = true;
    }
    sim.schedule_after(rng.exponential(1.0), [&fire, source] { fire(source); });
  };

  for (std::uint64_t s = 0; s < sources; ++s) {
    sim.schedule_after(rng.exponential(1.0), [&fire, s] { fire(s); });
  }

  const auto start = std::chrono::steady_clock::now();
  record.events_executed = sim.run();
  const auto finish = std::chrono::steady_clock::now();
  record.wall_seconds = std::chrono::duration<double>(finish - start).count();
  return record;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("engine_throughput",
                "Event-engine throughput benchmark; writes a JSON record.");
  cli.add_option("sources", "number of concurrent event chains", "16384");
  cli.add_option("events", "events to execute per driver", "2000000");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("out", "output JSON path", "BENCH_engine.json");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const auto sources = static_cast<std::uint64_t>(cli.get_int("sources"));
  const auto events = static_cast<std::uint64_t>(cli.get_int("events"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string out_path = cli.get_string("out");

  std::vector<RunRecord> runs;
  runs.push_back(run_driver("steady_churn", sources, events, false, seed));
  runs.push_back(run_driver("cancel_churn", sources, events, true, seed));

  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value("engine_throughput");
  json.key("sources").value(sources);
  json.key("events_target").value(events);
  json.key("seed").value(seed);
  json.key("runs").begin_array();
  for (const RunRecord& run : runs) {
    json.begin_object();
    json.key("name").value(run.name);
    json.key("events_executed").value(run.events_executed);
    json.key("wall_seconds").value(run.wall_seconds);
    json.key("events_per_second").value(run.events_per_second());
    json.key("ns_per_event").value(run.ns_per_event());
    json.key("peak_pending_events")
        .value(static_cast<std::uint64_t>(run.peak_pending));
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::ofstream out(out_path);
  require(out.good(), "engine_throughput: cannot write '" + out_path + "'");
  out << json.str() << "\n";

  for (const RunRecord& run : runs) {
    std::printf("%-12s %9.1f ns/event  %12.0f events/s  peak pending %zu\n",
                run.name.c_str(), run.ns_per_event(), run.events_per_second(),
                run.peak_pending);
  }
  std::printf("record written to %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "error: %s\n", error.what());
  return 1;
}
