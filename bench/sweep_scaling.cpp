// Thread-scaling of the sweep runner, reported as a machine-readable
// JSON record (BENCH_sweep.json) so CI and the performance docs can
// track the work-stealing pool across runner changes. Runs one
// Figure-6-style DES sweep (blocking Case 1, cluster axis x two message
// sizes) at a ladder of thread counts, checks every parallel grid is
// bitwise identical to the serial one, and records wall time + speedup
// per rung. hardware_concurrency is recorded too: on a 1-core host a
// flat curve is the expected result, not a regression. A second record
// ("scenario_sweep") times the same grid under a heavy-traffic workload
// (G/G/1 cv^2 = 4 service, MMPP bursty arrivals) once per backend, so
// the analytic-vs-DES cell-cost gap for non-exponential scenarios is
// tracked alongside the exponential baseline.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

struct ScalingRun {
  std::uint32_t threads = 0;
  double wall_seconds = 0.0;
  bool bit_identical = true;  ///< grid bytes equal to the serial run's
  /// threads > hardware_concurrency: the rung measures scheduler churn,
  /// not parallel speedup, so no speedup is claimed for it.
  bool oversubscribed = false;
};

runner::SweepSpec make_spec(std::uint64_t seed) {
  runner::SweepSpec spec;
  spec.id = "sweep_scaling";
  spec.axes.technologies = {
      runner::technology_case(analytic::HeterogeneityCase::kCase1)};
  spec.axes.clusters = {2, 4, 8, 16, 32};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.axes.architectures = {analytic::NetworkArchitecture::kBlocking};
  spec.base_seed = seed;
  return spec;
}

/// Bitwise equality per field. A whole-struct memcmp is wrong here:
/// PointResult::error is a std::string whose small-string buffer
/// pointer refers into the object itself, so two identical grids at
/// different addresses never compare byte-equal. Doubles are compared
/// through memcmp (not ==) so the check stays a bit-identity claim,
/// distinguishing -0.0 from 0.0 and never treating NaN as unequal to
/// its own bit pattern.
bool cells_identical(const runner::PointResult& a,
                     const runner::PointResult& b) {
  const auto bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  return bits(a.mean_latency_us, b.mean_latency_us) &&
         bits(a.ci_half_us, b.ci_half_us) &&
         bits(a.lambda_offered, b.lambda_offered) &&
         bits(a.lambda_effective, b.lambda_effective) &&
         a.converged == b.converged &&
         bits(a.effective_rate_per_us, b.effective_rate_per_us) &&
         a.messages_measured == b.messages_measured &&
         bits(a.mean_switch_hops, b.mean_switch_hops) &&
         bits(a.max_switch_utilization, b.max_switch_utilization) &&
         bits(a.max_center_utilization, b.max_center_utilization) &&
         a.status == b.status && a.attempts == b.attempts &&
         a.error == b.error;
}

bool grids_identical(const runner::SweepResult& a,
                     const runner::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!cells_identical(a.cells[i], b.cells[i])) return false;
  }
  return true;
}

/// Heavy-traffic variant of the same grid: G/G/1 service (cv^2 = 4)
/// under 2-state MMPP bursty arrivals (docs/WORKLOADS.md), timed per
/// backend so the analytic-vs-DES cell-cost gap is tracked like for
/// like with the exponential sweep above.
runner::SweepSpec make_scenario_spec(std::uint64_t seed) {
  runner::SweepSpec spec = make_spec(seed);
  spec.id = "sweep_scaling_gg1_mmpp";
  spec.workload.service_cv2 = 4.0;
  spec.workload.mmpp = analytic::MmppArrivals{4.0, 0.1, 1000.0};
  return spec;
}

struct ScenarioCost {
  double wall_seconds = 0.0;
  double cell_seconds = 0.0;
  std::size_t points = 0;
};

ScenarioCost time_backend(const runner::SweepSpec& spec,
                          const std::shared_ptr<runner::Backend>& backend) {
  runner::RunnerOptions options;
  options.threads = 1;  // serial: cost per cell, not pool throughput
  const auto start = std::chrono::steady_clock::now();
  const runner::SweepResult result =
      runner::run_sweep(spec, {backend}, options);
  const auto finish = std::chrono::steady_clock::now();
  ScenarioCost cost;
  cost.wall_seconds = std::chrono::duration<double>(finish - start).count();
  cost.points = result.points.size();
  cost.cell_seconds =
      cost.points > 0 ? cost.wall_seconds / static_cast<double>(cost.points)
                      : 0.0;
  return cost;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("sweep_scaling",
                "Sweep-runner thread scaling benchmark; writes a JSON "
                "record.");
  cli.add_option("messages", "measured deliveries per point", "20000");
  cli.add_option("seed", "base sweep seed", "3");
  cli.add_option("out", "output JSON path", "BENCH_sweep.json");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const std::uint64_t messages = cli.get_uint("messages");
  const std::uint64_t seed = cli.get_uint("seed");
  const std::string out_path = cli.get_string("out");

  const runner::SweepSpec spec = make_spec(seed);
  runner::DesBackend::Options des;
  des.sim.measured_messages = messages;
  des.sim.warmup_messages = messages / 5;
  const std::vector<std::shared_ptr<runner::Backend>> backends = {
      std::make_shared<runner::DesBackend>(des)};

  const std::uint32_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<ScalingRun> runs;
  runner::SweepResult serial;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    runner::RunnerOptions options;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    runner::SweepResult result = runner::run_sweep(spec, backends, options);
    const auto finish = std::chrono::steady_clock::now();

    ScalingRun run;
    run.threads = threads;
    run.wall_seconds =
        std::chrono::duration<double>(finish - start).count();
    run.oversubscribed = threads > cores;
    if (threads == 1) {
      serial = std::move(result);
    } else {
      run.bit_identical = grids_identical(serial, result);
    }
    runs.push_back(run);
  }

  // Like-for-like heavy-traffic sweep: same grid, G/G/1 cv^2 = 4 service
  // + MMPP bursty arrivals, each backend timed serially so the record
  // carries the analytic-vs-DES cell-cost gap for scenario workloads.
  const runner::SweepSpec scenario_spec = make_scenario_spec(seed);
  const auto analytic_backend = std::make_shared<runner::AnalyticBackend>();
  const ScenarioCost analytic_cost =
      time_backend(scenario_spec, analytic_backend);
  const ScenarioCost des_cost = time_backend(scenario_spec, backends.front());

  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value("sweep_scaling");
  json.key("messages").value(messages);
  json.key("seed").value(seed);
  json.key("points").value(static_cast<std::uint64_t>(serial.points.size()));
  json.key("hardware_concurrency").value(static_cast<std::uint64_t>(cores));
  json.key("runs").begin_array();
  for (const ScalingRun& run : runs) {
    json.begin_object();
    json.key("threads").value(static_cast<std::uint64_t>(run.threads));
    json.key("wall_seconds").value(run.wall_seconds);
    // An oversubscribed rung gets no speedup claim: its wall time is
    // valid data, but the ratio would compare context-switch overhead,
    // not parallelism.
    if (!run.oversubscribed) {
      json.key("speedup_vs_serial").value(
          run.wall_seconds > 0.0 ? runs.front().wall_seconds / run.wall_seconds
                                 : 0.0);
    }
    json.key("oversubscribed").value(run.oversubscribed);
    json.key("bit_identical").value(run.bit_identical);
    json.end_object();
  }
  json.end_array();
  json.key("scenario_sweep").begin_object();
  json.key("workload").value("gg1_cv2_4_mmpp");
  json.key("service_cv2").value(4.0);
  json.key("mmpp_burst_ratio").value(4.0);
  json.key("points").value(static_cast<std::uint64_t>(analytic_cost.points));
  json.key("analytic").begin_object();
  json.key("wall_seconds").value(analytic_cost.wall_seconds);
  json.key("cell_seconds").value(analytic_cost.cell_seconds);
  json.end_object();
  json.key("des").begin_object();
  json.key("messages").value(messages);
  json.key("wall_seconds").value(des_cost.wall_seconds);
  json.key("cell_seconds").value(des_cost.cell_seconds);
  json.end_object();
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  require(out.good(), "sweep_scaling: cannot write '" + out_path + "'");
  out << json.str() << "\n";

  bool all_identical = true;
  for (const ScalingRun& run : runs) {
    if (run.oversubscribed) {
      std::printf("threads=%u  %7.3f s  (oversubscribed: %u threads > %u "
                  "cores; no speedup claimed)  %s\n",
                  run.threads, run.wall_seconds, run.threads, cores,
                  run.bit_identical ? "bit-identical" : "GRID MISMATCH");
    } else {
      std::printf("threads=%u  %7.3f s  speedup %.2fx  %s\n", run.threads,
                  run.wall_seconds,
                  runs.front().wall_seconds / run.wall_seconds,
                  run.bit_identical ? "bit-identical" : "GRID MISMATCH");
    }
    all_identical = all_identical && run.bit_identical;
  }
  std::printf("scenario sweep (cv2=4 + MMPP, %zu cells): analytic %.3e s/cell, "
              "des %.3e s/cell\n",
              analytic_cost.points, analytic_cost.cell_seconds,
              des_cost.cell_seconds);
  std::printf("hardware_concurrency=%u\nrecord written to %s\n", cores,
              out_path.c_str());
  return all_identical ? 0 : 1;
} catch (const std::exception& error) {
  std::fprintf(stderr, "error: %s\n", error.what());
  return 1;
}
