// Thread-scaling of the sweep runner, reported as a machine-readable
// JSON record (BENCH_sweep.json) so CI and the performance docs can
// track the work-stealing pool across runner changes. Runs one
// Figure-6-style DES sweep (blocking Case 1, cluster axis x two message
// sizes) at a ladder of thread counts, checks every parallel grid is
// bitwise identical to the serial one, and records wall time + speedup
// per rung. hardware_concurrency is recorded too: on a 1-core host a
// flat curve is the expected result, not a regression.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

struct ScalingRun {
  std::uint32_t threads = 0;
  double wall_seconds = 0.0;
  bool bit_identical = true;  ///< grid bytes equal to the serial run's
  /// threads > hardware_concurrency: the rung measures scheduler churn,
  /// not parallel speedup, so no speedup is claimed for it.
  bool oversubscribed = false;
};

runner::SweepSpec make_spec(std::uint64_t seed) {
  runner::SweepSpec spec;
  spec.id = "sweep_scaling";
  spec.axes.technologies = {
      runner::technology_case(analytic::HeterogeneityCase::kCase1)};
  spec.axes.clusters = {2, 4, 8, 16, 32};
  spec.axes.message_bytes = {1024.0, 512.0};
  spec.axes.architectures = {analytic::NetworkArchitecture::kBlocking};
  spec.base_seed = seed;
  return spec;
}

bool grids_identical(const runner::SweepResult& a,
                     const runner::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  return std::memcmp(a.cells.data(), b.cells.data(),
                     a.cells.size() * sizeof(runner::PointResult)) == 0;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("sweep_scaling",
                "Sweep-runner thread scaling benchmark; writes a JSON "
                "record.");
  cli.add_option("messages", "measured deliveries per point", "20000");
  cli.add_option("seed", "base sweep seed", "3");
  cli.add_option("out", "output JSON path", "BENCH_sweep.json");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const std::uint64_t messages = cli.get_uint("messages");
  const std::uint64_t seed = cli.get_uint("seed");
  const std::string out_path = cli.get_string("out");

  const runner::SweepSpec spec = make_spec(seed);
  runner::DesBackend::Options des;
  des.sim.measured_messages = messages;
  des.sim.warmup_messages = messages / 5;
  const std::vector<std::shared_ptr<runner::Backend>> backends = {
      std::make_shared<runner::DesBackend>(des)};

  const std::uint32_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<ScalingRun> runs;
  runner::SweepResult serial;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    runner::RunnerOptions options;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    runner::SweepResult result = runner::run_sweep(spec, backends, options);
    const auto finish = std::chrono::steady_clock::now();

    ScalingRun run;
    run.threads = threads;
    run.wall_seconds =
        std::chrono::duration<double>(finish - start).count();
    run.oversubscribed = threads > cores;
    if (threads == 1) {
      serial = std::move(result);
    } else {
      run.bit_identical = grids_identical(serial, result);
    }
    runs.push_back(run);
  }

  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value("sweep_scaling");
  json.key("messages").value(messages);
  json.key("seed").value(seed);
  json.key("points").value(static_cast<std::uint64_t>(serial.points.size()));
  json.key("hardware_concurrency").value(static_cast<std::uint64_t>(cores));
  json.key("runs").begin_array();
  for (const ScalingRun& run : runs) {
    json.begin_object();
    json.key("threads").value(static_cast<std::uint64_t>(run.threads));
    json.key("wall_seconds").value(run.wall_seconds);
    // An oversubscribed rung gets no speedup claim: its wall time is
    // valid data, but the ratio would compare context-switch overhead,
    // not parallelism.
    if (!run.oversubscribed) {
      json.key("speedup_vs_serial").value(
          run.wall_seconds > 0.0 ? runs.front().wall_seconds / run.wall_seconds
                                 : 0.0);
    }
    json.key("oversubscribed").value(run.oversubscribed);
    json.key("bit_identical").value(run.bit_identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  std::ofstream out(out_path);
  require(out.good(), "sweep_scaling: cannot write '" + out_path + "'");
  out << json.str() << "\n";

  bool all_identical = true;
  for (const ScalingRun& run : runs) {
    if (run.oversubscribed) {
      std::printf("threads=%u  %7.3f s  (oversubscribed: %u threads > %u "
                  "cores; no speedup claimed)  %s\n",
                  run.threads, run.wall_seconds, run.threads, cores,
                  run.bit_identical ? "bit-identical" : "GRID MISMATCH");
    } else {
      std::printf("threads=%u  %7.3f s  speedup %.2fx  %s\n", run.threads,
                  run.wall_seconds,
                  runs.front().wall_seconds / run.wall_seconds,
                  run.bit_identical ? "bit-identical" : "GRID MISMATCH");
    }
    all_identical = all_identical && run.bit_identical;
  }
  std::printf("hardware_concurrency=%u\nrecord written to %s\n", cores,
              out_path.c_str());
  return all_identical ? 0 : 1;
} catch (const std::exception& error) {
  std::fprintf(stderr, "error: %s\n", error.what());
  return 1;
}
