// Section 6's comparative claim: "the average message latency of blocking
// network is larger, something between 1.4 to 3.1 times" (the figure axes
// suggest a larger spread at the extremes). This harness computes the
// measured blocking/non-blocking latency ratio per cluster count for both
// scenarios, from both the analytical model and the simulator.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double simulate_ms(const SystemConfig& config, std::uint64_t seed,
                   std::uint64_t messages) {
  sim::SimOptions options;
  options.measured_messages = messages;
  options.warmup_messages = messages / 5;
  options.seed = seed;
  sim::MultiClusterSim simulator(config, options);
  return units::us_to_ms(simulator.run().mean_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ratio_blocking_vs_nonblocking",
                "blocking/non-blocking latency ratio per cluster count");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  cli.add_option("bytes", "message size in bytes", "1024");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));
    const double bytes = cli.get_double("bytes");

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    for (const auto hetero :
         {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
      std::cout << "== " << to_string(hetero) << ", M=" << bytes
                << " bytes ==\n";
      Table table({"Clusters", "non-blocking (ms)", "blocking (ms)",
                   "ratio (analysis)", "ratio (simulation)"});
      double min_ratio = 1e300;
      double max_ratio = 0.0;
      std::size_t count = 0;
      const std::uint32_t* sweep = paper_cluster_sweep(&count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t clusters = sweep[i];
        const SystemConfig nonblocking =
            paper_scenario(hetero, clusters,
                           NetworkArchitecture::kNonBlocking, bytes,
                           kPaperTotalNodes, rate);
        const SystemConfig blocking = paper_scenario(
            hetero, clusters, NetworkArchitecture::kBlocking, bytes,
            kPaperTotalNodes, rate);

        const double nb_ms = units::us_to_ms(
            predict_latency(nonblocking, mva).mean_latency_us);
        const double b_ms =
            units::us_to_ms(predict_latency(blocking, mva).mean_latency_us);
        const double sim_ratio =
            simulate_ms(blocking, 31 + clusters, messages) /
            simulate_ms(nonblocking, 47 + clusters, messages);

        const double ratio = b_ms / nb_ms;
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
        table.add_row({std::to_string(clusters), format_fixed(nb_ms, 2),
                       format_fixed(b_ms, 2), format_fixed(ratio, 2),
                       format_fixed(sim_ratio, 2)});
      }
      std::cout << table;
      std::printf("ratio range across the sweep: %.2f .. %.2f"
                  " (paper text: 1.4 .. 3.1; figure axes: up to ~8)\n\n",
                  min_ratio, max_ratio);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
