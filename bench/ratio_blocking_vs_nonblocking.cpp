// Section 6's comparative claim: "the average message latency of blocking
// network is larger, something between 1.4 to 3.1 times" (the figure axes
// suggest a larger spread at the extremes). This harness computes the
// measured blocking/non-blocking latency ratio per cluster count for both
// scenarios, from both the analytical model and the simulator.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("ratio_blocking_vs_nonblocking",
                "blocking/non-blocking latency ratio per cluster count");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  cli.add_option("bytes", "message size in bytes", "1024");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::uint64_t messages = cli.get_uint("messages");
    const double bytes = cli.get_double("bytes");

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;
    runner::DesBackend::Options des;
    des.sim.measured_messages = messages;
    des.sim.warmup_messages = messages / 5;
    des.direct_seed = true;

    for (const auto hetero :
         {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
      // One sweep per scenario: paper cluster sweep × both architectures
      // (architecture innermost). The original study used different seed
      // bases per architecture, preserved through seed_fn.
      runner::SweepSpec spec;
      spec.id = "ratio";
      spec.axes.technologies = {runner::technology_case(hetero)};
      spec.axes.lambda_per_us = {
          units::per_s_to_per_us(cli.get_double("lambda"))};
      spec.axes.message_bytes = {bytes};
      spec.axes.architectures = {NetworkArchitecture::kNonBlocking,
                                 NetworkArchitecture::kBlocking};
      spec.seed_fn = [](const runner::SweepPoint& point) -> std::uint64_t {
        return (point.architecture == NetworkArchitecture::kBlocking ? 31
                                                                     : 47) +
               point.clusters;
      };
      const runner::SweepResult result = runner::run_sweep(
          spec, {std::make_shared<runner::AnalyticBackend>(mva, "analysis"),
                 std::make_shared<runner::DesBackend>(des, "simulation")});

      std::cout << "== " << to_string(hetero) << ", M=" << bytes
                << " bytes ==\n";
      Table table({"Clusters", "non-blocking (ms)", "blocking (ms)",
                   "ratio (analysis)", "ratio (simulation)"});
      double min_ratio = 1e300;
      double max_ratio = 0.0;
      // Points come out (C, non-blocking), (C, blocking), ...
      for (std::size_t i = 0; i + 1 < result.points.size(); i += 2) {
        const double nb_ms = units::us_to_ms(result.at(i, 0).mean_latency_us);
        const double b_ms =
            units::us_to_ms(result.at(i + 1, 0).mean_latency_us);
        const double sim_ratio =
            units::us_to_ms(result.at(i + 1, 1).mean_latency_us) /
            units::us_to_ms(result.at(i, 1).mean_latency_us);

        const double ratio = b_ms / nb_ms;
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
        table.add_row({std::to_string(result.points[i].clusters),
                       format_fixed(nb_ms, 2), format_fixed(b_ms, 2),
                       format_fixed(ratio, 2), format_fixed(sim_ratio, 2)});
      }
      std::cout << table;
      std::printf("ratio range across the sweep: %.2f .. %.2f"
                  " (paper text: 1.4 .. 3.1; figure axes: up to ~8)\n\n",
                  min_ratio, max_ratio);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
