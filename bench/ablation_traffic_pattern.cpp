// Ablation: Section 5.3 remarks that "the linear array network is not
// suited for random traffic patterns, but for localized traffic
// patterns". This harness runs the simulator under uniform, localized,
// and hotspot traffic on both architectures: the blocking network's
// penalty should collapse as traffic localises, while the fat-tree is
// nearly pattern-insensitive.

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"
#include "hmcs/workload/traffic_pattern.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double simulate_ms(const SystemConfig& config,
                   std::shared_ptr<const workload::TrafficPattern> traffic,
                   std::uint64_t seed, std::uint64_t messages) {
  sim::SimOptions options;
  options.measured_messages = messages;
  options.warmup_messages = messages / 5;
  options.seed = seed;
  options.traffic = std::move(traffic);
  sim::MultiClusterSim simulator(config, options);
  return units::us_to_ms(simulator.run().mean_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_traffic_pattern",
                "traffic-pattern sensitivity of both architectures");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  cli.add_option("clusters", "cluster count", "8");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));

    const auto space = workload::NodeSpace::uniform(
        clusters, kPaperTotalNodes / clusters);
    const struct {
      const char* label;
      std::shared_ptr<const workload::TrafficPattern> pattern;
    } patterns[] = {
        {"uniform (paper)",
         std::make_shared<workload::UniformTraffic>(space)},
        {"localized 50%",
         std::make_shared<workload::LocalizedTraffic>(space, 0.5)},
        {"localized 90%",
         std::make_shared<workload::LocalizedTraffic>(space, 0.9)},
        {"hotspot 20% -> node 0",
         std::make_shared<workload::HotspotTraffic>(space, 0, 0.2)},
    };

    std::cout << "== Ablation: traffic pattern (Case 1, C=" << clusters
              << ", M=1024) ==\n";
    Table table({"pattern", "fat-tree (ms)", "linear array (ms)",
                 "blocking penalty"});
    std::uint64_t seed = 1234;
    for (const auto& entry : patterns) {
      const SystemConfig nonblocking = paper_scenario(
          HeterogeneityCase::kCase1, clusters,
          NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);
      const SystemConfig blocking = paper_scenario(
          HeterogeneityCase::kCase1, clusters, NetworkArchitecture::kBlocking,
          1024.0, kPaperTotalNodes, rate);
      const double nb = simulate_ms(nonblocking, entry.pattern, seed++,
                                    messages);
      const double b = simulate_ms(blocking, entry.pattern, seed++, messages);
      table.add_row({entry.label, format_fixed(nb, 2), format_fixed(b, 2),
                     format_fixed(b / nb, 2) + "x"});
    }
    std::cout << table;
    std::cout
        << "(Section 5.3's claim is about absolute viability: under\n"
           " uniform traffic the chain is deeply saturated, while 90%\n"
           " locality slashes its latency by an order of magnitude —\n"
           " 'not suited for random traffic patterns, but for localized\n"
           " traffic patterns'. The fat-tree benefits even more, so the\n"
           " ratio column still favours it; hotspot traffic is the worst\n"
           " case for the bisection-limited chain.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
