// One-table accuracy summary across all four figures: for each figure,
// the mean/max relative error of (a) the paper's eqs. (6)-(7) model and
// (b) the exact-MVA extension against the same simulation runs. This is
// the headline validation number of EXPERIMENTS.md, regenerated in one
// binary.

#include <cstdio>
#include <iostream>

#include "hmcs/experiment/figure_experiment.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::experiment;

  CliParser cli("model_accuracy_report",
                "analysis-vs-simulation agreement across Figures 4-7");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("replications", "independent replications per point", "1");
  cli.add_option("seed", "base seed", "1");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }

    Table table({"figure", "paper model: mean err", "max err",
                 "exact MVA: mean err", "max err"});
    for (FigureSpec spec : {figure4_spec(), figure5_spec(), figure6_spec(),
                            figure7_spec()}) {
      spec.sim_options.measured_messages =
          static_cast<std::uint64_t>(cli.get_int("messages"));
      spec.sim_options.warmup_messages =
          spec.sim_options.measured_messages / 5;
      spec.sim_options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      spec.replications =
          static_cast<std::uint32_t>(cli.get_int("replications"));

      spec.model_options.fixed_point.method =
          analytic::SourceThrottling::kBisection;
      const FigureResult paper = run_figure(spec);

      spec.model_options.fixed_point.method =
          analytic::SourceThrottling::kExactMva;
      const FigureResult mva = run_figure(spec);

      table.add_row({spec.id,
                     format_fixed(paper.mean_relative_error * 100.0, 1) + "%",
                     format_fixed(paper.max_relative_error * 100.0, 1) + "%",
                     format_fixed(mva.mean_relative_error * 100.0, 1) + "%",
                     format_fixed(mva.max_relative_error * 100.0, 1) + "%"});
    }
    std::cout << "== Model accuracy vs simulation, Figures 4-7 ==\n"
              << table
              << "(the paper model's max errors concentrate at the partially\n"
                 " saturated small-C points; see "
                 "Bounds.PaperApproximationViolatesTheEnvelope...)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
