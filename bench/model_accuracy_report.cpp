// One-table accuracy summary across all four figures: for each figure,
// the mean/max relative error of (a) the paper's eqs. (6)-(7) model and
// (b) the exact-MVA extension against the same simulation runs. This is
// the headline validation number of EXPERIMENTS.md, regenerated in one
// binary. Running both analytic variants as backends of one sweep means
// each figure's simulation runs once, not once per variant.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/experiment/figure_experiment.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/math_util.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;

struct ErrorSummary {
  double mean = 0.0;
  double max = 0.0;
};

/// Mean/max relative error of one analytic backend column against the
/// simulation column, in ms — the figure harness's accuracy notion.
ErrorSummary column_errors(const runner::SweepResult& result,
                           std::size_t analytic_column,
                           std::size_t sim_column) {
  ErrorSummary summary;
  for (const runner::SweepPoint& point : result.points) {
    const double analysis_ms =
        units::us_to_ms(result.at(point.index, analytic_column).mean_latency_us);
    const double simulation_ms =
        units::us_to_ms(result.at(point.index, sim_column).mean_latency_us);
    const double error = relative_error(analysis_ms, simulation_ms);
    summary.mean += error;
    summary.max = std::max(summary.max, error);
  }
  summary.mean /= static_cast<double>(result.points.size());
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmcs::experiment;

  CliParser cli("model_accuracy_report",
                "analysis-vs-simulation agreement across Figures 4-7");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("replications", "independent replications per point", "1");
  cli.add_option("seed", "base seed", "1");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::uint64_t messages = cli.get_uint("messages");

    analytic::ModelOptions paper_model;
    paper_model.fixed_point.method = analytic::SourceThrottling::kBisection;
    analytic::ModelOptions mva_model;
    mva_model.fixed_point.method = analytic::SourceThrottling::kExactMva;

    runner::DesBackend::Options des;
    des.sim.measured_messages = messages;
    des.sim.warmup_messages = messages / 5;
    des.replications =
        static_cast<std::uint32_t>(cli.get_uint("replications"));

    Table table({"figure", "paper model: mean err", "max err",
                 "exact MVA: mean err", "max err"});
    for (const FigureSpec& fig : {figure4_spec(), figure5_spec(),
                                  figure6_spec(), figure7_spec()}) {
      // The figure's sweep, evaluated by both analytic variants and the
      // simulator in one grid (same per-point seeds as the figure
      // harness, so the simulation column matches the figures).
      runner::SweepSpec spec;
      spec.id = fig.id;
      spec.axes.technologies = {runner::technology_case(fig.hetero)};
      spec.axes.lambda_per_us = {fig.rate_per_us};
      spec.axes.message_bytes = fig.message_sizes;
      spec.axes.architectures = {fig.architecture};
      spec.total_nodes = fig.total_nodes;
      spec.base_seed = cli.get_uint("seed");

      const runner::SweepResult result = runner::run_sweep(
          spec,
          {std::make_shared<runner::AnalyticBackend>(paper_model, "paper"),
           std::make_shared<runner::AnalyticBackend>(mva_model, "mva"),
           std::make_shared<runner::DesBackend>(des, "simulation")});

      const ErrorSummary paper = column_errors(result, 0, 2);
      const ErrorSummary mva = column_errors(result, 1, 2);
      table.add_row({fig.id, format_fixed(paper.mean * 100.0, 1) + "%",
                     format_fixed(paper.max * 100.0, 1) + "%",
                     format_fixed(mva.mean * 100.0, 1) + "%",
                     format_fixed(mva.max * 100.0, 1) + "%"});
    }
    std::cout << "== Model accuracy vs simulation, Figures 4-7 ==\n"
              << table
              << "(the paper model's max errors concentrate at the partially\n"
                 " saturated small-C points; see "
                 "Bounds.PaperApproximationViolatesTheEnvelope...)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
