// Reproduces Table 2 (model parameters) together with the derived
// quantities the model actually consumes, and documents the lambda unit
// reconciliation (DESIGN.md note 4).

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main() {
  using namespace hmcs;
  using namespace hmcs::analytic;

  try {
    std::cout << "== Table 2: model parameters ==\n";
    Table table({"Item", "Quantity", "Unit"});
    const NetworkTechnology ge = gigabit_ethernet();
    const NetworkTechnology fe = fast_ethernet();
    table.add_row({"GE Latency", format_fixed(ge.latency_us, 0), "us"});
    table.add_row({"GE Bandwidth", format_fixed(ge.bandwidth_bytes_per_us, 0),
                   "MB/s"});
    table.add_row({"FE Latency", format_fixed(fe.latency_us, 0), "us"});
    table.add_row({"FE Bandwidth", format_fixed(fe.bandwidth_bytes_per_us, 1),
                   "MB/s"});
    table.add_row({"# of Ports in Switch Fabric (Pr)",
                   std::to_string(kPaperSwitchPorts), "Port"});
    table.add_row({"Switch Latency", format_fixed(kPaperSwitchLatencyUs, 0),
                   "us"});
    table.add_row({"Msg. Generation rate (lambda)", "0.25", "/ms  (see note)"});
    std::cout << table << "\n";

    std::cout << "Derived per-technology quantities:\n";
    Table derived({"Technology", "beta (us/byte)", "T(512B) eq.10 (us)",
                   "T(1024B) eq.10 (us)"});
    for (const auto& tech : {ge, fe, myrinet(), infiniband()}) {
      derived.add_row({tech.name, format_fixed(tech.byte_time_us(), 4),
                       format_fixed(tech.transmission_time_us(512.0), 1),
                       format_fixed(tech.transmission_time_us(1024.0), 1)});
    }
    std::cout << derived << "\n";

    std::printf(
        "note on lambda: the paper's Table 2 prints '0.25 /s'. At that rate\n"
        "the busiest centre is ~0.01%% utilised and every latency curve is\n"
        "flat at the no-load service time (~0.1-0.2 ms) — the figures'\n"
        "2-34 ms (non-blocking) / 15-225 ms (blocking) dynamics cannot\n"
        "arise. Interpreted as 0.25 msg/ms (%.0f msg/s) the model lands\n"
        "exactly on the figures' scale; bench/ablation_lambda sweeps both\n"
        "readings. All harnesses accept --lambda <msg/s>.\n",
        units::per_us_to_per_s(kPaperRatePerUs));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
