// Ablation: eq. (6) counts each cluster's ECN1 queue twice
// (L = C(2 L_E1 + L_I1) + L_I2) even though lambda_E1 (eq. 5) already
// aggregates both visits — double-counting waiting processors. This
// harness quantifies how much the literal rule shifts the fixed point
// and the predicted latency relative to the single-count rule.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("ablation_queue_length_rule",
                "literal eq. (6) vs consistent ECN1 queue accounting");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));

    std::cout << "== Ablation: eq. (6) ECN1 double-count "
                 "(Fig. 4 configuration, M=1024) ==\n";
    Table table({"Clusters", "eq.6 literal: latency (ms)", "lambda_eff",
                 "consistent: latency (ms)", "lambda_eff", "latency delta"});
    std::size_t count = 0;
    const std::uint32_t* sweep = paper_cluster_sweep(&count);
    for (std::size_t i = 0; i < count; ++i) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, sweep[i],
          NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);

      ModelOptions paper;
      paper.fixed_point.queue_rule = QueueLengthRule::kPaperEq6;
      ModelOptions consistent;
      consistent.fixed_point.queue_rule = QueueLengthRule::kConsistent;

      const LatencyPrediction a = predict_latency(config, paper);
      const LatencyPrediction b = predict_latency(config, consistent);
      const double delta =
          (a.mean_latency_us - b.mean_latency_us) / b.mean_latency_us;
      table.add_row(
          {std::to_string(sweep[i]),
           format_fixed(units::us_to_ms(a.mean_latency_us), 3),
           format_compact(units::per_us_to_per_s(a.lambda_effective), 4),
           format_fixed(units::us_to_ms(b.mean_latency_us), 3),
           format_compact(units::per_us_to_per_s(b.lambda_effective), 4),
           format_fixed(delta * 100.0, 1) + "%"});
    }
    std::cout << table;
    std::cout << "(lambda_eff in msg/s per node; the double-count throttles\n"
                 " sources harder wherever the remote path carries queueing)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
