// Workload-level study: does co-allocation (spanning jobs across
// clusters) pay off? The question of the paper's reference [5] (Bucur &
// Epema), answered with this paper's latency model supplying the
// communication prices. Spanning starts jobs sooner (less fragmentation)
// but every remote task pair pays the ECN1/ICN2 path; the balance
// depends on load and on which side of the Table 1 heterogeneity the
// backbone falls.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/jobs/job_workload.hpp"
#include "hmcs/jobs/scheduler.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::jobs;

WorkloadSpec workload(double mean_interarrival_us, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.mean_interarrival_us = mean_interarrival_us;
  spec.min_tasks = 4;
  spec.max_tasks = 64;
  spec.mean_work_us = 300e3;  // 0.3 s of compute per task
  spec.messages_per_task = 500.0;
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("coallocation_study",
                "single-cluster vs co-allocation scheduling, priced by the "
                "latency model");
  cli.add_option("jobs", "jobs per run", "2000");
  cli.add_option("clusters", "cluster count (divides 256)", "8");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto job_count = static_cast<std::uint64_t>(cli.get_int("jobs"));
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));

    for (const auto hetero : {analytic::HeterogeneityCase::kCase1,
                              analytic::HeterogeneityCase::kCase2}) {
      // Light background traffic: message prices reflect the network
      // technologies, not a saturated backbone.
      const analytic::SystemConfig system = analytic::paper_scenario(
          hetero, clusters, analytic::NetworkArchitecture::kNonBlocking,
          1024.0, 256, units::per_s_to_per_us(10.0));
      std::cout << "== " << analytic::to_string(hetero) << ", C=" << clusters
                << " x " << system.nodes_per_cluster << " nodes ==\n";

      Table table({"load", "policy", "mean wait (s)", "mean slowdown",
                   "utilization", "spanning", "comm share", "rejected"});
      for (const double interarrival_us : {60e3, 35e3, 25e3}) {
        for (const auto policy : {PlacementPolicy::kSingleCluster,
                                  PlacementPolicy::kSingleClusterFirst,
                                  PlacementPolicy::kCoAllocation}) {
          SchedulerOptions options;
          options.policy = policy;
          options.backfill = true;
          MultiClusterScheduler scheduler(system, options);
          const auto jobs_list = generate_jobs(
              workload(interarrival_us, 42), job_count);
          const ScheduleResult result = scheduler.run(jobs_list);
          table.add_row(
              {format_compact(60e3 / interarrival_us, 3) + "x",
               to_string(policy),
               format_fixed(units::us_to_s(result.metrics.mean_wait_us), 2),
               format_fixed(result.metrics.mean_bounded_slowdown, 2),
               format_fixed(result.metrics.utilization, 3),
               format_fixed(result.metrics.spanning_fraction, 3),
               format_fixed(result.metrics.mean_comm_share, 3),
               std::to_string(result.metrics.rejected)});
        }
      }
      std::cout << table << "\n";
    }
    std::cout
        << "(single-cluster placement REJECTS jobs wider than one cluster —\n"
           " its low waits come with the rejected column's lost work; pure\n"
           " co-allocation runs everything but spanning jobs pay remote\n"
           " latency; single-cluster-first is the usual compromise. The gap\n"
           " between Case 1 and Case 2 shows how the backbone technology\n"
           " decides how expensive co-allocation is.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
