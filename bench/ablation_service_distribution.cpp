// Ablation: the paper assumes exponential network service times so each
// centre is M/M/1. Real fixed-size store-and-forward transmission is
// closer to deterministic (M/D/1). This harness runs the simulator both
// ways against the exponential-based analysis, quantifying the cost of
// that modelling assumption (M/D/1 queues are about half as long).

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double simulate_ms(const SystemConfig& config,
                   sim::ServiceDistribution distribution, std::uint64_t seed,
                   std::uint64_t messages) {
  sim::SimOptions options;
  options.measured_messages = messages;
  options.warmup_messages = messages / 5;
  options.seed = seed;
  options.service_distribution = distribution;
  sim::MultiClusterSim simulator(config, options);
  return units::us_to_ms(simulator.run().mean_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_service_distribution",
                "exponential (paper) vs deterministic network service");
  // Default to moderate load: at the headline 250 msg/s every point is
  // throughput-bound (saturated closed loop), where service variability
  // is irrelevant by design; the distribution's effect shows at
  // utilisations below ~0.9.
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "50");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    ModelOptions md1;
    md1.fixed_point.service_cv2 = 0.0;

    std::cout << "== Ablation: service-time distribution "
                 "(Fig. 4 configuration, M=1024) ==\n";
    Table table({"Clusters", "analysis M/M/1 (ms)", "sim exponential (ms)",
                 "analysis M/D/1 (ms)", "sim deterministic (ms)", "det/exp"});
    std::size_t count = 0;
    const std::uint32_t* sweep = paper_cluster_sweep(&count);
    for (std::size_t i = 0; i < count; ++i) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, sweep[i],
          NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);
      const double analysis_ms =
          units::us_to_ms(predict_latency(config, mva).mean_latency_us);
      const double analysis_md1_ms =
          units::us_to_ms(predict_latency(config, md1).mean_latency_us);
      const double exp_ms =
          simulate_ms(config, sim::ServiceDistribution::kExponential,
                      500 + sweep[i], messages);
      const double det_ms =
          simulate_ms(config, sim::ServiceDistribution::kDeterministic,
                      900 + sweep[i], messages);
      table.add_row({std::to_string(sweep[i]), format_fixed(analysis_ms, 3),
                     format_fixed(exp_ms, 3),
                     format_fixed(analysis_md1_ms, 3), format_fixed(det_ms, 3),
                     format_fixed(det_ms / exp_ms, 2)});
    }
    std::cout << table;
    std::cout
        << "(at moderate load deterministic service shortens queues —\n"
           " Pollaczek-Khinchine halves the waiting time, so the M/M/1\n"
           " analysis overestimates an M/D/1-like network there; rerun\n"
           " with --lambda 250 to see the effect vanish in saturation,\n"
           " where latency is throughput-bound and distribution-free)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
