// Reproduces Figure 7: average message latency vs number of clusters for
// the blocking (linear switch array) network in Case 2 (ICN1 = Fast
// Ethernet, ECN1/ICN2 = Gigabit Ethernet), N = 256, M in {1024, 512} bytes.

#include "figure_main.hpp"

int main(int argc, char** argv) {
  return hmcs::experiment::figure_main(argc, argv,
                                       hmcs::experiment::figure7_spec());
}
