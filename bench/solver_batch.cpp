// Like-for-like benchmark of the batch analytic solver (BENCH_solver.json):
//
//  1. Station-class MVA collapse: the exact recursion over the 2C+1
//     stations of the HMCS network vs the same recursion over its 3
//     station classes, at a large closed population (default 2^20) and
//     each requested cluster count. Identical stations stay exchangeable
//     through the recursion, so the collapse is exact — the record
//     carries the measured max relative error next to the speedup.
//
//  2. Batch grid evaluation: predict_latency cell-by-cell vs
//     predict_latency_batch over a dense generation-rate grid, for every
//     SourceThrottling method, with warm starts on (the default).
//
// Both comparisons run the same trajectories on the same inputs in the
// same process, cold each time; speedups are wall-clock ratios of the
// two implementations, nothing else.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "hmcs/analytic/batch_solver.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/string_util.hpp"

namespace {

using namespace hmcs;
using analytic::SourceThrottling;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double rel_error(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom > 0.0 ? std::fabs(a - b) / denom : 0.0;
}

analytic::SystemConfig make_config(std::uint32_t clusters,
                                   std::uint32_t nodes_per_cluster) {
  analytic::SystemConfig config;
  config.clusters = clusters;
  config.nodes_per_cluster = nodes_per_cluster;
  config.icn1 = analytic::gigabit_ethernet();
  config.ecn1 = analytic::fast_ethernet();
  config.icn2 = analytic::gigabit_ethernet();
  return config;
}

struct MvaCollapseRun {
  std::uint32_t clusters = 0;
  std::size_t stations = 0;
  double station_seconds = 0.0;
  double class_seconds = 0.0;
  double max_rel_error = 0.0;
};

/// Part 1: one cluster count; population = clusters * nodes_per_cluster.
MvaCollapseRun run_mva_collapse(std::uint32_t clusters,
                                std::uint64_t total_nodes) {
  require(total_nodes % clusters == 0,
          "solver_batch: --nodes must be divisible by every cluster count");
  const analytic::SystemConfig config = make_config(
      clusters, static_cast<std::uint32_t>(total_nodes / clusters));
  const analytic::CenterServiceTimes service =
      analytic::center_service_times(config);
  const double think = 1.0 / config.generation_rate_per_us;

  MvaCollapseRun run;
  run.clusters = clusters;

  const analytic::HmcsMvaLayout stations =
      analytic::build_hmcs_mva_layout(config, service);
  run.stations = stations.stations.size();
  auto start = std::chrono::steady_clock::now();
  const analytic::MvaResult by_station =
      analytic::solve_closed_mva(stations.stations, think, total_nodes);
  run.station_seconds = seconds_since(start);

  const analytic::HmcsMvaClassLayout classes =
      analytic::build_hmcs_mva_class_layout(config, service);
  start = std::chrono::steady_clock::now();
  const analytic::MvaClassResult by_class =
      analytic::solve_closed_mva_classes(classes.classes, think, total_nodes);
  run.class_seconds = seconds_since(start);

  run.max_rel_error =
      rel_error(by_station.throughput, by_class.throughput);
  run.max_rel_error = std::max(
      run.max_rel_error, rel_error(by_station.total_residence_us,
                                   by_class.total_residence_us));
  const std::size_t station_of_class[3] = {
      stations.icn1_index, stations.ecn1_index, stations.icn2_index};
  for (std::size_t cls = 0; cls < 3; ++cls) {
    run.max_rel_error = std::max(
        run.max_rel_error,
        rel_error(by_station.response_time_us[station_of_class[cls]],
                  by_class.response_time_us[cls]));
    run.max_rel_error = std::max(
        run.max_rel_error,
        rel_error(by_station.queue_length[station_of_class[cls]],
                  by_class.queue_length[cls]));
  }
  return run;
}

struct GridRun {
  std::string method;
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  /// Over cells where both sides converged — the numerical contract;
  /// non-converged (saturated, oscillating Picard) cells' final iterate
  /// is trajectory-dependent under warm starts, by design.
  double max_rel_error = 0.0;
  std::uint64_t converged_cells = 0;
  std::uint64_t converged_flag_mismatches = 0;
};

/// Part 2: one throttling method over the shared rate grid.
GridRun run_grid(const std::vector<analytic::SystemConfig>& configs,
                 SourceThrottling method, const char* name) {
  analytic::ModelOptions options;
  options.fixed_point.method = method;

  GridRun run;
  run.method = name;

  std::vector<analytic::LatencyPrediction> scalar;
  scalar.reserve(configs.size());
  auto start = std::chrono::steady_clock::now();
  for (const analytic::SystemConfig& config : configs) {
    scalar.push_back(analytic::predict_latency(config, options));
  }
  run.scalar_seconds = seconds_since(start);

  start = std::chrono::steady_clock::now();
  const std::vector<analytic::LatencyPrediction> batch =
      analytic::predict_latency_batch(configs, options);
  run.batch_seconds = seconds_since(start);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (scalar[i].fixed_point_converged != batch[i].fixed_point_converged) {
      ++run.converged_flag_mismatches;
      continue;
    }
    if (!scalar[i].fixed_point_converged) continue;
    ++run.converged_cells;
    run.max_rel_error =
        std::max(run.max_rel_error, rel_error(scalar[i].mean_latency_us,
                                              batch[i].mean_latency_us));
    run.max_rel_error =
        std::max(run.max_rel_error, rel_error(scalar[i].lambda_effective,
                                              batch[i].lambda_effective));
  }
  return run;
}

double speedup(double slow_seconds, double fast_seconds) {
  return fast_seconds > 0.0 ? slow_seconds / fast_seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("solver_batch",
                "Batch/station-class analytic solver benchmark; writes a "
                "JSON record.");
  cli.add_option("nodes", "closed-MVA population (total nodes)", "1048576");
  cli.add_option("clusters", "comma-separated cluster counts for the MVA "
                             "collapse comparison", "64,1024");
  cli.add_option("grid-cells", "rate-grid size for the batch comparison",
                 "512");
  cli.add_option("out", "output JSON path", "BENCH_solver.json");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const std::uint64_t nodes = cli.get_uint("nodes");
  const std::uint64_t grid_cells = cli.get_uint("grid-cells");
  const std::string out_path = cli.get_string("out");
  std::vector<std::uint32_t> cluster_counts;
  for (const std::string& item : split(cli.get_string("clusters"), ',')) {
    cluster_counts.push_back(
        static_cast<std::uint32_t>(std::stoul(trim(item))));
  }
  require(!cluster_counts.empty(), "solver_batch: --clusters is empty");
  require(grid_cells >= 2, "solver_batch: --grid-cells must be >= 2");

  // Part 1: station-class collapse at the full population.
  std::vector<MvaCollapseRun> collapse;
  for (const std::uint32_t clusters : cluster_counts) {
    collapse.push_back(run_mva_collapse(clusters, nodes));
    const MvaCollapseRun& run = collapse.back();
    std::printf("mva C=%-5u %4zu stations -> 3 classes: %8.3f s -> %8.3f s "
                "(%.1fx), max rel err %.2e\n",
                run.clusters, run.stations, run.station_seconds,
                run.class_seconds,
                speedup(run.station_seconds, run.class_seconds),
                run.max_rel_error);
  }

  // Part 2: the rate grid, from light load to well past saturation of
  // the slowest centre (the fixed point throttles the saturated cells).
  const analytic::SystemConfig base = make_config(16, 8);
  std::vector<analytic::SystemConfig> grid(grid_cells, base);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].generation_rate_per_us =
        1.5e-3 * static_cast<double>(i + 1) / static_cast<double>(grid.size());
  }
  const std::vector<GridRun> grid_runs = {
      run_grid(grid, SourceThrottling::kNone, "none"),
      run_grid(grid, SourceThrottling::kPicard, "picard"),
      run_grid(grid, SourceThrottling::kBisection, "bisection"),
      run_grid(grid, SourceThrottling::kExactMva, "mva"),
  };
  for (const GridRun& run : grid_runs) {
    std::printf("grid %-9s %llu cells (%llu converged): %8.4f s -> %8.4f s "
                "(%.1fx), max rel err %.2e, %llu flag mismatches\n",
                run.method.c_str(),
                static_cast<unsigned long long>(grid_cells),
                static_cast<unsigned long long>(run.converged_cells),
                run.scalar_seconds, run.batch_seconds,
                speedup(run.scalar_seconds, run.batch_seconds),
                run.max_rel_error,
                static_cast<unsigned long long>(
                    run.converged_flag_mismatches));
  }

  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value("solver_batch");
  json.key("total_nodes").value(nodes);
  json.key("mva_class_collapse").begin_array();
  for (const MvaCollapseRun& run : collapse) {
    json.begin_object();
    json.key("clusters").value(static_cast<std::uint64_t>(run.clusters));
    json.key("stations").value(static_cast<std::uint64_t>(run.stations));
    json.key("classes").value(static_cast<std::uint64_t>(3));
    json.key("station_seconds").value(run.station_seconds);
    json.key("class_seconds").value(run.class_seconds);
    json.key("speedup").value(speedup(run.station_seconds, run.class_seconds));
    json.key("max_rel_error").value(run.max_rel_error);
    json.end_object();
  }
  json.end_array();
  json.key("batch_grid").begin_object();
  json.key("cells").value(grid_cells);
  json.key("clusters").value(static_cast<std::uint64_t>(base.clusters));
  json.key("nodes_per_cluster")
      .value(static_cast<std::uint64_t>(base.nodes_per_cluster));
  json.key("warm_start").value(true);
  json.key("methods").begin_array();
  for (const GridRun& run : grid_runs) {
    json.begin_object();
    json.key("method").value(run.method);
    json.key("scalar_seconds").value(run.scalar_seconds);
    json.key("batch_seconds").value(run.batch_seconds);
    json.key("speedup").value(speedup(run.scalar_seconds, run.batch_seconds));
    json.key("converged_cells").value(run.converged_cells);
    json.key("max_rel_error_converged").value(run.max_rel_error);
    json.key("converged_flag_mismatches")
        .value(run.converged_flag_mismatches);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  require(out.good(), "solver_batch: cannot write '" + out_path + "'");
  out << json.str() << "\n";
  std::printf("record written to %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "error: %s\n", error.what());
  return 1;
}
