// Ablation: how much does the blocked-source correction matter, and how
// accurate is the paper's open-network approximation (eqs. 6-7) compared
// with the exact closed-network MVA? Sweeps Figure 4's configuration and
// prints latency per throttling method next to the simulation reference.
//
// Headline: kNone explodes at saturated points (the open network has no
// stationary distribution there, reported as 'inf'); kPicard/kBisection
// agree with each other but misallocate queueing at partially saturated
// points (C=2); kExactMva tracks the simulator within noise everywhere.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

std::string latency_cell(const runner::PointResult& cell, bool is_picard) {
  if (!std::isfinite(cell.mean_latency_us)) return "inf";
  if (is_picard && !cell.converged) {
    return format_fixed(units::us_to_ms(cell.mean_latency_us), 3) + "*";
  }
  return format_fixed(units::us_to_ms(cell.mean_latency_us), 3);
}

std::shared_ptr<runner::Backend> analytic_backend(SourceThrottling method,
                                                  std::string name) {
  ModelOptions options;
  options.fixed_point.method = method;
  if (method == SourceThrottling::kPicard) {
    options.fixed_point.picard_damping = 0.5;
    options.fixed_point.max_iterations = 10000;
  }
  return std::make_shared<runner::AnalyticBackend>(options, std::move(name));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_fixed_point",
                "latency per source-throttling method vs simulation");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::uint64_t messages = cli.get_uint("messages");

    // The paper cluster sweep (the default clusters axis) against every
    // throttling method plus the simulator — one grid, five backends.
    runner::SweepSpec spec;
    spec.id = "ablation_fixed_point";
    spec.axes.lambda_per_us = {units::per_s_to_per_us(cli.get_double("lambda"))};
    spec.seed_fn = [](const runner::SweepPoint& point) -> std::uint64_t {
      return 7000 + point.clusters;
    };

    runner::DesBackend::Options des;
    des.sim.measured_messages = messages;
    des.sim.warmup_messages = messages / 5;
    des.direct_seed = true;
    const runner::SweepResult result = runner::run_sweep(
        spec, {analytic_backend(SourceThrottling::kNone, "none"),
               analytic_backend(SourceThrottling::kPicard, "picard"),
               analytic_backend(SourceThrottling::kBisection, "bisection"),
               analytic_backend(SourceThrottling::kExactMva, "mva"),
               std::make_shared<runner::DesBackend>(des, "simulation")});

    std::cout << "== Ablation: blocked-source correction "
                 "(Fig. 4 configuration, M=1024) ==\n";
    Table table({"Clusters", "none (ms)", "Picard eq.7 (ms)",
                 "bisection (ms)", "exact MVA (ms)", "simulation (ms)"});
    for (const runner::SweepPoint& point : result.points) {
      table.add_row(
          {std::to_string(point.clusters),
           latency_cell(result.at(point.index, 0), false),
           latency_cell(result.at(point.index, 1), true),
           latency_cell(result.at(point.index, 2), false),
           latency_cell(result.at(point.index, 3), false),
           format_fixed(
               units::us_to_ms(result.at(point.index, 4).mean_latency_us),
               3)});
    }
    std::cout << table;
    std::cout << "(* = Picard hit its iteration cap without converging; the\n"
                 " last damped iterate is shown. 'inf' = the uncorrected\n"
                 " open network is unstable at that point.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
