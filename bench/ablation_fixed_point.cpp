// Ablation: how much does the blocked-source correction matter, and how
// accurate is the paper's open-network approximation (eqs. 6-7) compared
// with the exact closed-network MVA? Sweeps Figure 4's configuration and
// prints latency per throttling method next to the simulation reference.
//
// Headline: kNone explodes at saturated points (the open network has no
// stationary distribution there, reported as 'inf'); kPicard/kBisection
// agree with each other but misallocate queueing at partially saturated
// points (C=2); kExactMva tracks the simulator within noise everywhere.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

std::string latency_cell(const SystemConfig& config, SourceThrottling method) {
  ModelOptions options;
  options.fixed_point.method = method;
  if (method == SourceThrottling::kPicard) {
    options.fixed_point.picard_damping = 0.5;
    options.fixed_point.max_iterations = 10000;
  }
  const LatencyPrediction prediction = predict_latency(config, options);
  if (!std::isfinite(prediction.mean_latency_us)) return "inf";
  if (method == SourceThrottling::kPicard && !prediction.fixed_point_converged) {
    return format_fixed(units::us_to_ms(prediction.mean_latency_us), 3) + "*";
  }
  return format_fixed(units::us_to_ms(prediction.mean_latency_us), 3);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_fixed_point",
                "latency per source-throttling method vs simulation");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));

    std::cout << "== Ablation: blocked-source correction "
                 "(Fig. 4 configuration, M=1024) ==\n";
    Table table({"Clusters", "none (ms)", "Picard eq.7 (ms)",
                 "bisection (ms)", "exact MVA (ms)", "simulation (ms)"});
    std::size_t count = 0;
    const std::uint32_t* sweep = paper_cluster_sweep(&count);
    for (std::size_t i = 0; i < count; ++i) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, sweep[i],
          NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);

      sim::SimOptions sim_options;
      sim_options.measured_messages = messages;
      sim_options.warmup_messages = messages / 5;
      sim_options.seed = 7000 + sweep[i];
      sim::MultiClusterSim simulator(config, sim_options);
      const double sim_ms = units::us_to_ms(simulator.run().mean_latency_us);

      table.add_row({std::to_string(sweep[i]),
                     latency_cell(config, SourceThrottling::kNone),
                     latency_cell(config, SourceThrottling::kPicard),
                     latency_cell(config, SourceThrottling::kBisection),
                     latency_cell(config, SourceThrottling::kExactMva),
                     format_fixed(sim_ms, 3)});
    }
    std::cout << table;
    std::cout << "(* = Picard hit its iteration cap without converging; the\n"
                 " last damped iterate is shown. 'inf' = the uncorrected\n"
                 " open network is unstable at that point.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
