// In-process benchmark of the hmcs_serve service layer (no sockets):
// measures cold evaluation latency, warm cache-hit latency, the
// warm/cold speedup, multi-threaded warm throughput, and single-flight
// coalescing under concurrent duplicate keys. Writes BENCH_serve.json
// so CI and the performance docs can track the serving path.
//
// The workload mirrors hmcs_loadgen's default: exact MVA over a large
// closed network, so a cold evaluation costs real milliseconds and the
// cache's value is visible.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "hmcs/serve/service.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

std::string make_request(std::size_t key, std::uint64_t total_nodes,
                         const std::string& model) {
  JsonWriter json;
  json.begin_object();
  std::string id = "k";
  id += std::to_string(key);
  json.key("id").value(id);
  json.key("backend").begin_object();
  json.key("type").value("analytic");
  json.key("model").value(model);
  json.end_object();
  json.key("config").begin_object();
  json.key("clusters").value(16u);
  json.key("total_nodes").value(total_nodes);
  json.key("message_bytes").value(1024.0 + 16.0 * static_cast<double>(key));
  json.key("lambda_per_s").value(250.0);
  json.end_object();
  json.end_object();
  return json.str();
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("serve_throughput",
                "In-process serve-layer benchmark; writes a JSON record.");
  cli.add_option("keys", "distinct request configurations", "16");
  cli.add_option("warm-iterations", "hit-path repeats per key", "64");
  cli.add_option("threads", "threads for the warm throughput phase", "8");
  cli.add_option("total-nodes", "nodes per generated config", "1048576");
  cli.add_option("model", "analytic throttling model", "mva");
  cli.add_option("out", "output JSON path", "BENCH_serve.json");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const std::size_t keys = std::max<std::size_t>(1, cli.get_uint("keys"));
  const std::size_t warm_iterations =
      std::max<std::size_t>(1, cli.get_uint("warm-iterations"));
  const std::size_t threads = std::max<std::size_t>(1, cli.get_uint("threads"));
  const std::uint64_t total_nodes = cli.get_uint("total-nodes");
  const std::string model = cli.get_string("model");
  const std::string out_path = cli.get_string("out");

  std::vector<std::string> requests;
  for (std::size_t key = 0; key < keys; ++key) {
    requests.push_back(make_request(key, total_nodes, model));
  }

  serve::ServeService service({});

  // Phase 1: cold — every key evaluated once, cache empty.
  std::vector<std::string> cold_replies(keys);
  std::vector<double> cold_us;
  for (std::size_t key = 0; key < keys; ++key) {
    const double start = now_us();
    cold_replies[key] = service.handle_line(requests[key]);
    cold_us.push_back(now_us() - start);
    require(cold_replies[key].find("\"status\":\"ok\"") != std::string::npos,
            "serve_throughput: cold reply not ok: " + cold_replies[key]);
  }

  // Phase 2: warm — every key repeated, single thread, must hit the
  // cache and reproduce the cold bytes.
  std::vector<double> warm_us;
  for (std::size_t round = 0; round < warm_iterations; ++round) {
    for (std::size_t key = 0; key < keys; ++key) {
      const double start = now_us();
      const std::string reply = service.handle_line(requests[key]);
      warm_us.push_back(now_us() - start);
      require(reply == cold_replies[key],
              "serve_throughput: warm reply differs from cold");
    }
  }

  // Phase 3: warm throughput — all threads hammer the cached keys.
  std::atomic<std::uint64_t> warm_requests{0};
  const double throughput_start = now_us();
  {
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t round = 0; round < warm_iterations; ++round) {
          for (std::size_t key = t; key < keys; key += threads) {
            service.handle_line(requests[key]);
            warm_requests.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double throughput_seconds = (now_us() - throughput_start) / 1e6;
  const double warm_per_second =
      throughput_seconds > 0.0
          ? static_cast<double>(warm_requests.load()) / throughput_seconds
          : 0.0;

  // Phase 4: coalescing — a fresh service, all threads ask for the SAME
  // new key at once; single-flight must run exactly one evaluation.
  serve::ServeService coalesce_service({});
  const std::string shared = make_request(keys + 1, total_nodes, model);
  {
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] { coalesce_service.handle_line(shared); });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const serve::ServeService::Counters coalesce =
      coalesce_service.counters();

  const double cold_p50 = percentile(cold_us, 0.50);
  const double warm_p50 = percentile(warm_us, 0.50);
  const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;
  const serve::ShardedResultCache::Stats cache = service.cache_stats();

  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value("serve_throughput");
  json.key("keys").value(static_cast<std::uint64_t>(keys));
  json.key("warm_iterations").value(static_cast<std::uint64_t>(warm_iterations));
  json.key("threads").value(static_cast<std::uint64_t>(threads));
  json.key("total_nodes").value(total_nodes);
  json.key("model").value(model);
  json.key("cold_p50_us").value(cold_p50);
  json.key("cold_p95_us").value(percentile(cold_us, 0.95));
  json.key("cold_p99_us").value(percentile(cold_us, 0.99));
  json.key("cold_max_us").value(percentile(cold_us, 1.0));
  json.key("warm_p50_us").value(warm_p50);
  json.key("warm_p95_us").value(percentile(warm_us, 0.95));
  json.key("warm_p99_us").value(percentile(warm_us, 0.99));
  json.key("warm_max_us").value(percentile(warm_us, 1.0));
  json.key("warm_speedup_p50").value(speedup);
  json.key("warm_requests_per_second").value(warm_per_second);
  json.key("cache_hits").value(cache.hits);
  json.key("cache_misses").value(cache.misses);
  json.key("coalesce_threads").value(static_cast<std::uint64_t>(threads));
  json.key("coalesce_evaluations").value(coalesce.evaluations);
  json.key("coalesce_joined").value(coalesce.coalesced);
  json.end_object();

  std::ofstream out(out_path);
  require(out.good(), "serve_throughput: cannot write '" + out_path + "'");
  out << json.str() << "\n";

  std::printf("cold p50 %.1f us, warm p50 %.2f us, speedup %.0fx\n", cold_p50,
              warm_p50, speedup);
  std::printf("warm throughput %.0f requests/s over %zu threads\n",
              warm_per_second, threads);
  std::printf("coalescing: %llu evaluations for %zu concurrent duplicates\n",
              static_cast<unsigned long long>(coalesce.evaluations), threads);
  std::printf("record written to %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "error: %s\n", error.what());
  return 1;
}
