// Extension sweep: the paper evaluates only M in {512, 1024}. This
// harness sweeps the message size across three decades for both
// architectures, locating where the blocking network's (N/2)M*beta
// penalty starts to dominate (small messages are latency-bound and the
// two architectures nearly tie; large ones are bandwidth-bound and the
// chain collapses).

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("sweep_message_size",
                "latency vs message size for both architectures");
  cli.add_option("clusters", "cluster count (divides 256)", "8");
  cli.add_option("lambda", "per-node rate in msg/s", "50");
  cli.add_option("messages", "measured deliveries per point", "8000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    std::cout << "== Message-size sweep (Case 1, C=" << clusters
              << ", lambda=" << cli.get_string("lambda") << " msg/s) ==\n";
    Table table({"M (bytes)", "fat-tree: model (ms)", "sim (ms)",
                 "chain: model (ms)", "sim (ms)", "chain/tree"});
    for (const double bytes :
         {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
      double model_ms[2];
      double sim_ms[2];
      int slot = 0;
      for (const auto arch : {NetworkArchitecture::kNonBlocking,
                              NetworkArchitecture::kBlocking}) {
        const SystemConfig config = paper_scenario(
            HeterogeneityCase::kCase1, clusters, arch, bytes,
            kPaperTotalNodes, rate);
        model_ms[slot] =
            units::us_to_ms(predict_latency(config, mva).mean_latency_us);

        sim::SimOptions options;
        options.measured_messages = messages;
        options.warmup_messages = messages / 4;
        options.seed = 60'000 + static_cast<std::uint64_t>(bytes);
        sim::MultiClusterSim simulator(config, options);
        sim_ms[slot] = units::us_to_ms(simulator.run().mean_latency_us);
        ++slot;
      }
      table.add_row({format_compact(bytes, 6), format_fixed(model_ms[0], 3),
                     format_fixed(sim_ms[0], 3), format_fixed(model_ms[1], 3),
                     format_fixed(sim_ms[1], 3),
                     format_fixed(model_ms[1] / model_ms[0], 1) + "x"});
    }
    std::cout << table;
    std::cout << "(the blocking penalty scales with M: latency-bound small\n"
                 " messages barely notice the chain; bandwidth-bound large\n"
                 " ones pay the full (N/2) factor)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
