// Extension sweep: the paper evaluates only M in {512, 1024}. This
// harness sweeps the message size across three decades for both
// architectures, locating where the blocking network's (N/2)M*beta
// penalty starts to dominate (small messages are latency-bound and the
// two architectures nearly tie; large ones are bandwidth-bound and the
// chain collapses).

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("sweep_message_size",
                "latency vs message size for both architectures");
  cli.add_option("clusters", "cluster count (divides 256)", "8");
  cli.add_option("lambda", "per-node rate in msg/s", "50");
  cli.add_option("messages", "measured deliveries per point", "8000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto clusters = static_cast<std::uint32_t>(cli.get_uint("clusters"));
    const std::uint64_t messages = cli.get_uint("messages");

    // Message size × architecture grid (bytes-major — the cartesian
    // nesting order puts the architecture axis innermost); the seed
    // depends on the size only, as the original study seeded it.
    runner::SweepSpec spec;
    spec.id = "sweep_message_size";
    spec.axes.clusters = {clusters};
    spec.axes.lambda_per_us = {units::per_s_to_per_us(cli.get_double("lambda"))};
    spec.axes.message_bytes = {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0};
    spec.axes.architectures = {NetworkArchitecture::kNonBlocking,
                               NetworkArchitecture::kBlocking};
    spec.seed_fn = [](const runner::SweepPoint& point) {
      return 60'000 + static_cast<std::uint64_t>(point.message_bytes);
    };

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;
    runner::DesBackend::Options des;
    des.sim.measured_messages = messages;
    des.sim.warmup_messages = messages / 4;
    des.direct_seed = true;
    const runner::SweepResult result = runner::run_sweep(
        spec, {std::make_shared<runner::AnalyticBackend>(mva, "model"),
               std::make_shared<runner::DesBackend>(des, "sim")});

    std::cout << "== Message-size sweep (Case 1, C=" << clusters
              << ", lambda=" << cli.get_string("lambda") << " msg/s) ==\n";
    Table table({"M (bytes)", "fat-tree: model (ms)", "sim (ms)",
                 "chain: model (ms)", "sim (ms)", "chain/tree"});
    // Points come out (bytes, fat-tree), (bytes, chain), ...: two points
    // per table row.
    for (std::size_t i = 0; i + 1 < result.points.size(); i += 2) {
      const double tree_model_ms =
          units::us_to_ms(result.at(i, 0).mean_latency_us);
      const double tree_sim_ms =
          units::us_to_ms(result.at(i, 1).mean_latency_us);
      const double chain_model_ms =
          units::us_to_ms(result.at(i + 1, 0).mean_latency_us);
      const double chain_sim_ms =
          units::us_to_ms(result.at(i + 1, 1).mean_latency_us);
      table.add_row({format_compact(result.points[i].message_bytes, 6),
                     format_fixed(tree_model_ms, 3),
                     format_fixed(tree_sim_ms, 3),
                     format_fixed(chain_model_ms, 3),
                     format_fixed(chain_sim_ms, 3),
                     format_fixed(chain_model_ms / tree_model_ms, 1) + "x"});
    }
    std::cout << table;
    std::cout << "(the blocking penalty scales with M: latency-bound small\n"
                 " messages barely notice the chain; bandwidth-bound large\n"
                 " ones pay the full (N/2) factor)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
