// Reproduces Table 1 (the two network-heterogeneity scenarios) and shows
// the per-centre service times each scenario induces under both network
// architectures — the quantities that drive every figure.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"

int main() {
  using namespace hmcs;
  using namespace hmcs::analytic;

  try {
    std::cout << "== Table 1: communication network scenarios ==\n";
    Table table1({"Cases", "ICN1", "ECN1 and ICN2"});
    table1.add_row({"Case 1", "Gigabit Ethernet", "Fast Ethernet"});
    table1.add_row({"Case 2", "Fast Ethernet", "Gigabit Ethernet"});
    std::cout << table1 << "\n";

    std::cout << "Derived mean service times (N=256, C=8 => N0=32, M=1024B):\n";
    Table derived({"Scenario", "Architecture", "Centre", "alpha (us)",
                   "switch (us)", "M*beta (us)", "blocking (us)",
                   "total T (us)", "mu (msg/ms)"});
    for (const auto hetero :
         {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
      for (const auto arch : {NetworkArchitecture::kNonBlocking,
                              NetworkArchitecture::kBlocking}) {
        const SystemConfig config = paper_scenario(hetero, 8, arch, 1024.0);
        const CenterServiceTimes services = center_service_times(config);
        const struct {
          const char* name;
          const ServiceTimeBreakdown& breakdown;
        } rows[] = {{"ICN1", services.icn1},
                    {"ECN1", services.ecn1},
                    {"ICN2", services.icn2}};
        for (const auto& row : rows) {
          derived.add_row(
              {hetero == HeterogeneityCase::kCase1 ? "Case 1" : "Case 2",
               arch == NetworkArchitecture::kNonBlocking ? "non-blocking"
                                                         : "blocking",
               row.name, format_fixed(row.breakdown.link_latency_us, 1),
               format_fixed(row.breakdown.switch_latency_us, 1),
               format_fixed(row.breakdown.transmission_us, 1),
               format_fixed(row.breakdown.blocking_us, 1),
               format_fixed(row.breakdown.total_us(), 1),
               format_fixed(row.breakdown.service_rate() * 1000.0, 3)});
        }
      }
    }
    std::cout << derived;
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
