// Switch-level validation of the Section 5 closed forms. The paper's
// model treats each network as ONE service centre with the eq. (11) /
// eq. (21) mean service time; this harness simulates the same fabrics
// switch by switch on their actual wiring and reports:
//
//  1. no-load latency: eq. (11) (cut-through assumption) vs measured
//     cut-through and store-and-forward latencies on the fat-tree;
//  2. saturation throughput per endpoint: the chain's measured capacity
//     vs the fat-tree's, next to eq. (21)'s implied (N/2)-fold penalty —
//     the bisection bottleneck measured, not assumed;
//  3. the ECMP-vs-deterministic routing ablation on the fat-tree.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/netsim/switch_fabric_sim.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/topology/torus.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"

namespace {

using namespace hmcs;
using netsim::FabricSimOptions;
using netsim::FabricSimResult;
using netsim::SwitchFabricSim;

FabricSimResult run_fabric(const topology::Graph& graph,
                           FabricSimOptions options) {
  SwitchFabricSim sim(graph, options);
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("netsim_fabric_validation",
                "switch-level check of the Section 5 network abstractions");
  cli.add_option("nodes", "endpoints per fabric", "48");
  cli.add_option("ports", "switch radix", "8");
  cli.add_option("bytes", "message size in bytes", "1024");
  cli.add_option("messages", "measured deliveries per run", "8000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
    const auto ports = static_cast<std::uint32_t>(cli.get_int("ports"));
    const double bytes = cli.get_double("bytes");
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));

    const topology::FatTree tree(nodes, ports);
    const topology::LinearArray chain(nodes, ports);
    const analytic::SwitchParams switch_params{ports, 10.0};

    FabricSimOptions base;
    base.technology = analytic::fast_ethernet();
    base.message_bytes = bytes;
    base.switch_latency_us = switch_params.latency_us;
    base.measured_messages = messages;
    base.warmup_messages = messages / 4;
    base.seed = 11;

    // ---- 1. no-load latency vs eq. (11) -------------------------------
    std::printf("== switch-level vs eq. (11): no-load latency, fat-tree "
                "N=%llu Pr=%u, M=%.0fB ==\n",
                static_cast<unsigned long long>(nodes), ports, bytes);
    const analytic::ServiceTimeBreakdown eq11 = analytic::network_service_time(
        base.technology, nodes, switch_params,
        analytic::NetworkArchitecture::kNonBlocking, bytes);

    FabricSimOptions quiet = base;
    quiet.rate_per_us = 1e-6;
    FabricSimOptions quiet_ct = quiet;
    quiet_ct.mode = netsim::SwitchingMode::kCutThrough;
    const FabricSimResult snf = run_fabric(tree.build_graph(), quiet);
    const FabricSimResult ct = run_fabric(tree.build_graph(), quiet_ct);

    Table latency_table({"model", "mean latency (us)", "mean hops"});
    latency_table.add_row({"eq. (11) worst-case 2d-1, one serialisation",
                           format_fixed(eq11.total_us(), 1),
                           std::to_string(tree.worst_case_traversals())});
    latency_table.add_row({"switch-level, cut-through",
                           format_fixed(ct.mean_latency_us, 1),
                           format_fixed(ct.mean_switch_hops, 2)});
    latency_table.add_row({"switch-level, store-and-forward",
                           format_fixed(snf.mean_latency_us, 1),
                           format_fixed(snf.mean_switch_hops, 2)});
    std::cout << latency_table;
    std::printf(
        "eq. (11) assumes cut-through (one M*beta) at worst-case hops: it\n"
        "upper-bounds the measured cut-through mean and undercounts the\n"
        "per-hop serialisation of a true store-and-forward Ethernet.\n\n");

    // ---- 2. saturation throughput: the bisection penalty --------------
    std::printf("== emergent bisection bottleneck: saturation throughput ==\n");
    Table throughput_table({"fabric", "offered (msg/us/node)",
                            "delivered (msg/us/node)", "busiest switch util",
                            "mean latency (us)"});
    FabricSimOptions saturating = base;
    saturating.rate_per_us = 1e-3;
    // A 4-ary 2-cube torus with 3 endpoints per switch matches the 48
    // endpoints: bisection 8 — between the chain's 1 and the tree's 24.
    const topology::Torus torus(
        4, 2, static_cast<std::uint32_t>(std::max<std::uint64_t>(1, nodes / 16)));
    for (const auto& [label, graph] :
         {std::pair<const char*, topology::Graph>{"fat-tree (ECMP)",
                                                  tree.build_graph()},
          std::pair<const char*, topology::Graph>{"4-ary 2-cube torus",
                                                  torus.build_graph()},
          std::pair<const char*, topology::Graph>{"linear chain",
                                                  chain.build_graph()}}) {
      const FabricSimResult result = run_fabric(graph, saturating);
      throughput_table.add_row(
          {label, format_compact(saturating.rate_per_us, 3),
           format_compact(result.delivered_rate_per_us, 3),
           format_fixed(result.max_switch_utilization, 3),
           format_fixed(result.mean_latency_us, 1)});
    }
    std::cout << throughput_table;
    const double snf_service =
        switch_params.latency_us + bytes * base.technology.byte_time_us();
    std::printf(
        "chain capacity is pinned by its middle switch (~1/(%.1f us) total,\n"
        "~half of which crosses the bisection) — the structural fact that\n"
        "eq. (21) encodes as the (N/2)M*beta penalty.\n\n",
        snf_service);

    // ---- 3. routing ablation -------------------------------------------
    std::printf("== routing ablation on the fat-tree ==\n");
    Table routing_table({"routing", "delivered (msg/us/node)",
                         "mean latency (us)"});
    for (const auto policy : {netsim::RoutingPolicy::kRandomMinimal,
                              netsim::RoutingPolicy::kDeterministic}) {
      FabricSimOptions options = saturating;
      options.routing = policy;
      const FabricSimResult result = run_fabric(tree.build_graph(), options);
      routing_table.add_row(
          {policy == netsim::RoutingPolicy::kRandomMinimal
               ? "random minimal (ECMP)"
               : "deterministic lowest-id",
           format_compact(result.delivered_rate_per_us, 3),
           format_fixed(result.mean_latency_us, 1)});
    }
    std::cout << routing_table;
    std::printf("Theorem 1 is a wiring property; realising it needs\n"
                "multipath routing — single-path routing wastes the tree.\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
