#pragma once

/// Shared main() body for the four figure harnesses: runs one figure
/// sweep with optional CLI overrides and prints the paper-style report.
///
/// Options:
///   --seed N          base simulation seed (default 1)
///   --messages N      measured deliveries per point (default 10000)
///   --warmup N        warm-up deliveries per point (default 2000)
///   --replications N  independent simulation replications per point,
///                     with CIs across replication means (default 1)
///   --lambda R        per-node rate in msg/s (default 250, see DESIGN.md)
///   --model NAME      analytic throttling model:
///                     bisection|picard|mva|none (default bisection)
///   --csv-dir DIR     also write <dir>/<figure>.csv
///   --json-dir DIR    also write <dir>/<figure>.json
///   --no-sim          analysis only (fast sanity sweeps)
///   --obs-out DIR     dump observability artifacts (metrics.json,
///                     metrics.csv, trace.json) into DIR
///   --obs-sample-us T sim-time sampling period for queue-depth counter
///                     tracks (µs; only with --obs-out; default 200)

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/experiment/figure_experiment.hpp"
#include "hmcs/obs/export.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::experiment {

inline int figure_main(int argc, const char* const* argv, FigureSpec spec) {
  CliParser cli(spec.id, spec.title);
  cli.add_option("seed", "base simulation seed", "1");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("warmup", "warm-up deliveries per point", "2000");
  cli.add_option("replications", "independent simulation replications", "1");
  cli.add_option("lambda", "per-node generation rate in msg/s", "250");
  cli.add_option("csv-dir", "directory for CSV series", "");
  cli.add_option("json-dir", "directory for JSON records", "");
  cli.add_option("model", "throttling model: bisection|picard|mva|none",
                 "bisection");
  cli.add_flag("no-sim", "skip the simulation series");
  cli.add_option("obs-out", "directory for observability artifacts", "");
  cli.add_option("obs-sample-us",
                 "sim-time sampling period for counter tracks (us)", "200");

  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    spec.sim_options.seed = cli.get_uint("seed");
    spec.sim_options.measured_messages = cli.get_uint("messages");
    spec.sim_options.warmup_messages = cli.get_uint("warmup");
    spec.replications =
        static_cast<std::uint32_t>(cli.get_uint("replications"));
    spec.rate_per_us = units::per_s_to_per_us(cli.get_double("lambda"));
    spec.run_simulation = !cli.get_flag("no-sim");
    spec.model_options.fixed_point.method =
        runner::parse_throttling_model(cli.get_string("model"));

    const std::string obs_dir = cli.get_string("obs-out");
    if (!obs_dir.empty()) {
      spec.trace = std::make_shared<obs::TraceSession>();
      spec.sim_options.obs.sample_interval_us =
          cli.get_double("obs-sample-us");
    }

    const FigureResult result = run_figure(spec);
    print_figure_report(std::cout, result, cli.get_string("csv-dir"),
                        cli.get_string("json-dir"));

    if (!obs_dir.empty()) {
      // Make ring truncation visible in the metrics bundle too, not just
      // in the trace object itself.
      HMCS_OBS_GAUGE_SET("obs.trace.dropped_events",
                         static_cast<double>(spec.trace->dropped_count()));
      obs::write_run_artifacts(obs_dir, obs::Registry::global().snapshot(),
                               spec.trace.get());
      std::cout << "observability artifacts written to " << obs_dir
                << " (open trace.json at https://ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

}  // namespace hmcs::experiment
