#pragma once

/// Shared main() body for the four figure harnesses: runs one figure
/// sweep with optional CLI overrides and prints the paper-style report.
///
/// Options:
///   --seed N          base simulation seed (default 1)
///   --messages N      measured deliveries per point (default 10000)
///   --warmup N        warm-up deliveries per point (default 2000)
///   --lambda R        per-node rate in msg/s (default 250, see DESIGN.md)
///   --csv-dir DIR     also write <dir>/<figure>.csv
///   --no-sim          analysis only (fast sanity sweeps)
///   --obs-out DIR     dump observability artifacts (metrics.json,
///                     metrics.csv, trace.json) into DIR
///   --obs-sample-us T sim-time sampling period for queue-depth counter
///                     tracks (µs; only with --obs-out; default 200)

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/experiment/figure_experiment.hpp"
#include "hmcs/obs/export.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::experiment {

inline int figure_main(int argc, const char* const* argv, FigureSpec spec) {
  CliParser cli(spec.id, spec.title);
  cli.add_option("seed", "base simulation seed", "1");
  cli.add_option("messages", "measured deliveries per point", "10000");
  cli.add_option("warmup", "warm-up deliveries per point", "2000");
  cli.add_option("replications", "independent simulation replications", "1");
  cli.add_option("lambda", "per-node generation rate in msg/s", "250");
  cli.add_option("csv-dir", "directory for CSV series", "");
  cli.add_option("json-dir", "directory for JSON records", "");
  cli.add_option("model", "throttling model: bisection|picard|mva|none",
                 "bisection");
  cli.add_flag("no-sim", "skip the simulation series");
  cli.add_option("obs-out", "directory for observability artifacts", "");
  cli.add_option("obs-sample-us",
                 "sim-time sampling period for counter tracks (us)", "200");

  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    spec.sim_options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    spec.sim_options.measured_messages =
        static_cast<std::uint64_t>(cli.get_int("messages"));
    spec.sim_options.warmup_messages =
        static_cast<std::uint64_t>(cli.get_int("warmup"));
    spec.replications = static_cast<std::uint32_t>(cli.get_int("replications"));
    spec.rate_per_us = units::per_s_to_per_us(cli.get_double("lambda"));
    spec.run_simulation = !cli.get_flag("no-sim");

    const std::string model = cli.get_string("model");
    auto& method = spec.model_options.fixed_point.method;
    if (model == "bisection") {
      method = analytic::SourceThrottling::kBisection;
    } else if (model == "picard") {
      method = analytic::SourceThrottling::kPicard;
    } else if (model == "mva") {
      method = analytic::SourceThrottling::kExactMva;
    } else if (model == "none") {
      method = analytic::SourceThrottling::kNone;
    } else {
      require(false, "unknown --model value: " + model);
    }

    const std::string obs_dir = cli.get_string("obs-out");
    if (!obs_dir.empty()) {
      spec.trace = std::make_shared<obs::TraceSession>();
      spec.sim_options.obs.sample_interval_us =
          cli.get_double("obs-sample-us");
    }

    const FigureResult result = run_figure(spec);
    print_figure_report(std::cout, result, cli.get_string("csv-dir"),
                        cli.get_string("json-dir"));

    if (!obs_dir.empty()) {
      // Make ring truncation visible in the metrics bundle too, not just
      // in the trace object itself.
      HMCS_OBS_GAUGE_SET("obs.trace.dropped_events",
                         static_cast<double>(spec.trace->dropped_count()));
      obs::write_run_artifacts(obs_dir, obs::Registry::global().snapshot(),
                               spec.trace.get());
      std::cout << "observability artifacts written to " << obs_dir
                << " (open trace.json at https://ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

}  // namespace hmcs::experiment
