// Ablation: generation-rate sweep, including the literal Table 2 reading
// (0.25 msg/s) and the figure-scale reading (0.25 msg/ms = 250 msg/s).
// Shows where queueing starts to dominate and that the model tracks the
// simulator across the whole range — the unit-reconciliation evidence
// for DESIGN.md note 4.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("ablation_lambda", "generation-rate sweep at C=8, M=1024");
  cli.add_option("messages", "measured deliveries per point", "10000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    std::cout << "== Ablation: lambda sweep (Case 1, non-blocking, C=8, "
                 "M=1024) ==\n";
    Table table({"lambda (msg/s)", "analysis (ms)", "simulation (ms)",
                 "lambda_eff/lambda", "note"});
    const struct {
      double per_s;
      const char* note;
    } rates[] = {{0.25, "Table 2 literal"},
                 {2.5, ""},
                 {25.0, ""},
                 {100.0, ""},
                 {250.0, "figure scale (0.25/ms)"},
                 {1000.0, "deep saturation"}};
    for (const auto& point : rates) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking,
          1024.0, kPaperTotalNodes, units::per_s_to_per_us(point.per_s));
      const LatencyPrediction prediction = predict_latency(config, mva);

      sim::SimOptions options;
      options.measured_messages = messages;
      options.warmup_messages = messages / 5;
      options.seed = 4242;
      sim::MultiClusterSim simulator(config, options);
      const double sim_ms = units::us_to_ms(simulator.run().mean_latency_us);

      table.add_row(
          {format_compact(point.per_s, 4),
           format_fixed(units::us_to_ms(prediction.mean_latency_us), 3),
           format_fixed(sim_ms, 3),
           format_fixed(prediction.lambda_effective / prediction.lambda_offered,
                        3),
           point.note});
    }
    std::cout << table;
    std::cout << "(at 0.25 msg/s the latency is the bare ~0.3 ms service\n"
                 " path — none of the figures' millisecond dynamics exist;\n"
                 " at 250 msg/s the model reproduces the figures' scale)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
