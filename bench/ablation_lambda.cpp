// Ablation: generation-rate sweep, including the literal Table 2 reading
// (0.25 msg/s) and the figure-scale reading (0.25 msg/ms = 250 msg/s).
// Shows where queueing starts to dominate and that the model tracks the
// simulator across the whole range — the unit-reconciliation evidence
// for DESIGN.md note 4.

#include <cstdio>
#include <iostream>
#include <memory>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("ablation_lambda", "generation-rate sweep at C=8, M=1024");
  cli.add_option("messages", "measured deliveries per point", "10000");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const std::uint64_t messages = cli.get_uint("messages");

    const struct {
      double per_s;
      const char* note;
    } rates[] = {{0.25, "Table 2 literal"},
                 {2.5, ""},
                 {25.0, ""},
                 {100.0, ""},
                 {250.0, "figure scale (0.25/ms)"},
                 {1000.0, "deep saturation"}};

    // One declarative sweep over the rate axis; everything else is a
    // singleton. The historical fixed seed is preserved through seed_fn.
    runner::SweepSpec spec;
    spec.id = "ablation_lambda";
    spec.axes.clusters = {8};
    for (const auto& point : rates) {
      spec.axes.lambda_per_us.push_back(units::per_s_to_per_us(point.per_s));
    }
    spec.seed_fn = [](const runner::SweepPoint&) -> std::uint64_t {
      return 4242;
    };

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;
    runner::DesBackend::Options des;
    des.sim.measured_messages = messages;
    des.sim.warmup_messages = messages / 5;
    des.direct_seed = true;
    const runner::SweepResult result = runner::run_sweep(
        spec, {std::make_shared<runner::AnalyticBackend>(mva),
               std::make_shared<runner::DesBackend>(des)});

    std::cout << "== Ablation: lambda sweep (Case 1, non-blocking, C=8, "
                 "M=1024) ==\n";
    Table table({"lambda (msg/s)", "analysis (ms)", "simulation (ms)",
                 "lambda_eff/lambda", "note"});
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      const runner::PointResult& analysis = result.at(i, 0);
      const runner::PointResult& simulation = result.at(i, 1);
      table.add_row(
          {format_compact(rates[i].per_s, 4),
           format_fixed(units::us_to_ms(analysis.mean_latency_us), 3),
           format_fixed(units::us_to_ms(simulation.mean_latency_us), 3),
           format_fixed(analysis.lambda_effective / analysis.lambda_offered,
                        3),
           rates[i].note});
    }
    std::cout << table;
    std::cout << "(at 0.25 msg/s the latency is the bare ~0.3 ms service\n"
                 " path — none of the figures' millisecond dynamics exist;\n"
                 " at 250 msg/s the model reproduces the figures' scale)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
