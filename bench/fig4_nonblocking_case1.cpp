// Reproduces Figure 4: average message latency vs number of clusters for
// the non-blocking (fat-tree) network in Case 1 (ICN1 = Gigabit Ethernet,
// ECN1/ICN2 = Fast Ethernet), N = 256, M in {1024, 512} bytes, analysis
// and simulation series.

#include "figure_main.hpp"

int main(int argc, char** argv) {
  return hmcs::experiment::figure_main(argc, argv,
                                       hmcs::experiment::figure4_spec());
}
