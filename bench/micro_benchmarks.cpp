// google-benchmark microbenchmarks for the engine-level substrates:
// event-queue throughput, RNG sampling, M/M/1 maths, MVA solve cost,
// full analytical prediction, max-flow bisection measurement, and
// end-to-end simulator throughput. These quantify the claim that the
// analytical model is orders of magnitude cheaper than simulation —
// the paper's core motivation for analytical modelling.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/simcore/event_queue.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/fat_tree.hpp"

namespace {

using namespace hmcs;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  simcore::EventQueue queue;
  simcore::Rng rng(1);
  // Steady-state churn at `horizon` pending events.
  for (std::size_t i = 0; i < horizon; ++i) {
    queue.push(rng.uniform(0.0, 1000.0), [] {});
  }
  double now = 0.0;
  for (auto _ : state) {
    auto event = queue.pop_next();
    now = event->time;
    queue.push(now + rng.uniform(0.0, 1000.0), [] {});
    benchmark::DoNotOptimize(event->id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Churn with a 50% cancellation rate: every iteration pops one event,
  // reschedules it, arms a far-future "timeout", and disarms the timeout
  // armed a few iterations earlier — the timer-heavy pattern (timeouts
  // armed and almost always disarmed) that punishes engines whose cancel
  // path hashes or reorders. Timeouts sit beyond the churn window so
  // every cancel hits a pending event and the population stays pinned;
  // their tombstones are reclaimed by the calendar's rebuild purge.
  constexpr std::size_t kCancelLag = 64;
  constexpr double kTimeoutDelay = 1.0e6;
  const auto horizon = static_cast<std::size_t>(state.range(0));
  simcore::EventQueue queue;
  simcore::Rng rng(1);
  std::vector<simcore::EventId> pending(kCancelLag);
  for (std::size_t i = 0; i < 2 * horizon; ++i) {
    queue.push(rng.uniform(0.0, 1000.0), [] {});
  }
  for (std::size_t i = 0; i < kCancelLag; ++i) {
    pending[i] = queue.push(kTimeoutDelay + rng.uniform(0.0, 1000.0), [] {});
  }
  double now = 0.0;
  std::size_t cursor = 0;
  for (auto _ : state) {
    auto event = queue.pop_next();
    now = event->time;
    queue.push(now + rng.uniform(0.0, 1000.0), [] {});
    const simcore::EventId fresh =
        queue.push(now + kTimeoutDelay + rng.uniform(0.0, 1000.0), [] {});
    benchmark::DoNotOptimize(queue.cancel(pending[cursor]));
    pending[cursor] = fresh;
    cursor = (cursor + 1) % kCancelLag;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384);

void BM_RngExponential(benchmark::State& state) {
  simcore::Rng rng(7);
  double sink = 0.0;
  for (auto _ : state) {
    sink += rng.exponential(4000.0);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_RngUniformBelow(benchmark::State& state) {
  simcore::Rng rng(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += rng.uniform_below(255);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniformBelow);

void BM_MvaSolve(benchmark::State& state) {
  const auto clusters = static_cast<std::uint32_t>(state.range(0));
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, clusters,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  const analytic::CenterServiceTimes service =
      analytic::center_service_times(config);
  const analytic::HmcsMvaLayout layout =
      analytic::build_hmcs_mva_layout(config, service);
  for (auto _ : state) {
    const auto result = analytic::solve_closed_mva(
        layout.stations, 1.0 / config.generation_rate_per_us,
        config.total_nodes());
    benchmark::DoNotOptimize(result.throughput);
  }
}
BENCHMARK(BM_MvaSolve)->Arg(4)->Arg(64)->Arg(256);

void BM_PredictLatency(benchmark::State& state) {
  const bool mva = state.range(0) != 0;
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 16,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  analytic::ModelOptions options;
  if (mva) options.fixed_point.method = analytic::SourceThrottling::kExactMva;
  for (auto _ : state) {
    const auto prediction = analytic::predict_latency(config, options);
    benchmark::DoNotOptimize(prediction.mean_latency_us);
  }
  state.SetLabel(mva ? "exact-mva" : "paper-bisection");
}
BENCHMARK(BM_PredictLatency)->Arg(0)->Arg(1);

void BM_FatTreeBisectionMaxflow(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const topology::FatTree tree(n, 24);
  for (auto _ : state) {
    const auto graph = tree.build_graph();
    benchmark::DoNotOptimize(topology::measured_bisection_cables(graph));
  }
}
BENCHMARK(BM_FatTreeBisectionMaxflow)->Arg(48)->Arg(288);

void BM_SimulatorRun(benchmark::State& state) {
  const auto clusters = static_cast<std::uint32_t>(state.range(0));
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, clusters,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0);
  std::uint64_t seed = 1;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    sim::SimOptions options;
    options.measured_messages = 2000;
    options.warmup_messages = 200;
    options.seed = seed++;
    sim::MultiClusterSim simulator(config, options);
    const auto result = simulator.run();
    messages += result.messages_measured;
    benchmark::DoNotOptimize(result.mean_latency_us);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_SimulatorRun)->Arg(4)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // End-to-end engine throughput: items/sec here is *events executed*
  // per second across a full simulator run, the figure the engine
  // rewrite is meant to move.
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase2, 8,
      analytic::NetworkArchitecture::kBlocking, 4096.0);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::SimOptions options;
    options.measured_messages = 2000;
    options.warmup_messages = 200;
    options.seed = seed++;
    sim::MultiClusterSim simulator(config, options);
    const auto result = simulator.run();
    events += result.events_executed;
    benchmark::DoNotOptimize(result.mean_latency_us);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
