// Whole-system switch-level validation: the paper models each network as
// ONE M/M/1 server. Here the entire HMSCS (per-cluster ICN1 and ECN1
// fabrics, gateways, ICN2) runs at switch granularity, and its measured
// latency is compared against the centre-level analytical model and the
// centre-level simulator across the cluster sweep.
//
// Where the networks collapse to single switches (N0, C <= Pr) the two
// levels agree almost exactly; with multi-stage fabrics the centre-level
// abstraction folds the whole fabric into one server with the eq. (11)
// service time, and this bench quantifies what that abstraction costs.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/netsim/hmcs_fabric.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("netsim_hmcs_validation",
                "whole-system switch-level vs centre-level abstraction");
  cli.add_option("messages", "measured deliveries per point", "8000");
  cli.add_option("lambda", "per-node rate in msg/s", "250");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    std::cout << "== Whole-system switch-level validation (Case 1, "
                 "non-blocking, N=256, M=1024) ==\n";
    Table table({"Clusters", "model (ms)", "centre-level sim (ms)",
                 "switch-level sim (ms)", "switch hops", "switches"});
    for (const std::uint32_t clusters : {4u, 16u, 64u}) {
      const SystemConfig config = paper_scenario(
          HeterogeneityCase::kCase1, clusters,
          NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);

      const double model_ms =
          units::us_to_ms(predict_latency(config, mva).mean_latency_us);

      sim::SimOptions center_options;
      center_options.measured_messages = messages;
      center_options.warmup_messages = messages / 4;
      center_options.seed = 100 + clusters;
      sim::MultiClusterSim center_sim(config, center_options);
      const double center_ms =
          units::us_to_ms(center_sim.run().mean_latency_us);

      const netsim::HmcsFabric fabric(config);
      netsim::FabricSimOptions switch_options = fabric.make_sim_options();
      switch_options.measured_messages = messages;
      switch_options.warmup_messages = messages / 4;
      switch_options.seed = 200 + clusters;
      netsim::SwitchFabricSim switch_sim(fabric.graph(), switch_options);
      const netsim::FabricSimResult switch_result = switch_sim.run();

      table.add_row(
          {std::to_string(clusters), format_fixed(model_ms, 2),
           format_fixed(center_ms, 2),
           format_fixed(units::us_to_ms(switch_result.mean_latency_us), 2),
           format_fixed(switch_result.mean_switch_hops, 2),
           std::to_string(fabric.graph().count_nodes(
               topology::NodeKind::kSwitch))});
    }
    std::cout << table;
    std::cout
        << "(the centre-level abstraction is exact at low load — see the\n"
           " HmcsFabric.LowLoadLatencyMatchesCenterLevelModel test — but\n"
           " CONSERVATIVE under saturation, for two structural reasons:\n"
           " eq. (11) books the link latency alpha as server occupancy,\n"
           " shaving ~1/3 off a single-switch network's capacity, and a\n"
           " multi-stage fabric's internal parallelism [e.g. C=64: 22 ECN1\n"
           " switches per cluster] is folded into one server. The paper's\n"
           " model therefore over-predicts latency whenever its networks\n"
           " saturate — safe for capacity planning, loose as a forecast.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
