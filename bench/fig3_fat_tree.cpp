// Reproduces Figure 3 and the surrounding Section 5 analysis: multi-stage
// fat-tree structure (stages d, switch count k, bisection width) for the
// paper's worked example (N=16, Pr=8 => d=2, k=6, bisection 8) and a
// sweep over sizes, with Theorem 1 verified by max-flow on the actual
// wiring. The linear array's bisection width of 1 is shown alongside.

#include <cstdio>
#include <iostream>
#include <string>

#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"

int main() {
  using namespace hmcs;
  using topology::FatTree;
  using topology::LinearArray;

  try {
    std::cout << "== Figure 3 / Section 5: fat-tree structure ==\n";
    std::cout << "worked example: N=16, Pr=8\n";
    const FatTree example(16, 8);
    std::printf("  stages d (eq.12)          : %u (paper: 2)\n",
                example.num_stages());
    std::printf("  switches k (eq.13)        : %llu (paper: 6)\n",
                static_cast<unsigned long long>(example.num_switches()));
    std::printf("  bisection width (eq.14)   : %llu (paper: N/2 = 8)\n",
                static_cast<unsigned long long>(example.bisection_width()));
    std::printf("  measured via max-flow/min-cut on the wired instance: %llu\n\n",
                static_cast<unsigned long long>(
                    topology::measured_bisection_cables(example.build_graph())));

    Table table({"N", "Pr", "d", "switches k", "bisection (eq.14)",
                 "measured cut", "full bisection", "avg hops", "2d-1"});
    const struct {
      std::uint64_t n;
      std::uint32_t pr;
    } cases[] = {{16, 8},  {32, 8},   {64, 8},   {128, 8}, {16, 24},
                 {48, 24}, {240, 24}, {288, 24}, {256, 24}, {1024, 32}};
    for (const auto& c : cases) {
      const FatTree tree(c.n, c.pr);
      std::string measured = "(ragged)";
      std::string full = "-";
      if (tree.is_uniform()) {
        const auto cut =
            topology::measured_bisection_cables(tree.build_graph());
        measured = std::to_string(cut);
        full = topology::has_full_bisection(tree.build_graph()) ? "yes" : "NO";
      }
      table.add_row({std::to_string(c.n), std::to_string(c.pr),
                     std::to_string(tree.num_stages()),
                     std::to_string(tree.num_switches()),
                     std::to_string(tree.bisection_width()), measured, full,
                     format_fixed(tree.average_traversals(), 2),
                     std::to_string(tree.worst_case_traversals())});
    }
    std::cout << table;

    std::cout << "\n== Section 5.3: blocking linear array ==\n";
    Table chain_table({"N", "Pr", "switches k (eq.17)", "(k+1)/3 (eq.19)",
                       "exact avg hops", "bisection width"});
    for (const std::uint64_t n : {16ULL, 64ULL, 256ULL, 1024ULL}) {
      const LinearArray chain(n, 24);
      chain_table.add_row(
          {std::to_string(n), "24", std::to_string(chain.num_switches()),
           format_fixed(chain.paper_average_traversals(), 2),
           format_fixed(chain.average_traversals(), 2),
           std::to_string(chain.bisection_width())});
    }
    std::cout << chain_table;
    std::cout << "\nA fat-tree's measured min-cut always equals ceil(N/2)\n"
                 "(Definition 1: full bisection bandwidth, Theorem 1); the\n"
                 "chain bottoms out at a single link, which is why eq. (21)\n"
                 "slashes its throughput by N/2.\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
