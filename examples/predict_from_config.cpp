// Config-file driven prediction tool: load a system description from a
// key=value file, solve the analytical model (paper fixed point and
// exact MVA), optionally cross-check by simulation, and emit a JSON
// record for downstream tooling.
//
//   $ ./predict_from_config examples/configs/case1_c8.cfg
//   $ ./predict_from_config my.cfg --simulate --json out.json

#include <cstdio>
#include <fstream>
#include <optional>
#include <iostream>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/analytic/latency_distribution.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/serialize.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using namespace hmcs::analytic;

  CliParser cli("predict_from_config",
                "predict mean message latency for a config file");
  cli.add_flag("simulate", "also run the discrete-event simulator");
  cli.add_option("json", "write a JSON record to this path", "");
  try {
    if (!cli.parse(argc, argv) || cli.positional().empty()) {
      std::cout << cli.help_text()
                << "\nusage: predict_from_config <config.cfg> [--simulate]"
                   " [--json out.json]\n";
      return cli.positional().empty() ? 1 : 0;
    }
    const std::string path = cli.positional().front();
    const SystemConfig config = load_system_config(path);

    std::printf("%s: C=%u x N0=%u, %s, M=%.0fB, lambda=%.1f msg/s\n\n",
                path.c_str(), config.clusters, config.nodes_per_cluster,
                to_string(config.architecture), config.message_bytes,
                units::per_us_to_per_s(config.generation_rate_per_us));

    const LatencyPrediction open = predict_latency(config);
    ModelOptions mva_options;
    mva_options.fixed_point.method = SourceThrottling::kExactMva;
    const LatencyPrediction mva = predict_latency(config, mva_options);

    Table table({"model", "latency (ms)", "lambda_eff (msg/s)", "ICN1 util",
                 "ECN1 util", "ICN2 util"});
    auto add = [&](const char* name, const LatencyPrediction& prediction) {
      table.add_row(
          {name, format_fixed(units::us_to_ms(prediction.mean_latency_us), 3),
           format_fixed(units::per_us_to_per_s(prediction.lambda_effective), 1),
           format_fixed(prediction.icn1.utilization, 3),
           format_fixed(prediction.ecn1.utilization, 3),
           format_fixed(prediction.icn2.utilization, 3)});
    };
    add("paper fixed point", open);
    add("exact MVA", mva);

    std::optional<sim::SimResult> sim_result;
    if (cli.get_flag("simulate")) {
      sim::SimOptions options;
      options.measured_messages = 10000;
      options.warmup_messages = 2000;
      options.seed = 1;
      sim::MultiClusterSim simulator(config, options);
      sim_result = simulator.run();
      table.add_row(
          {"simulation",
           format_fixed(units::us_to_ms(sim_result->mean_latency_us), 3),
           format_fixed(
               units::per_us_to_per_s(sim_result->effective_rate_per_us), 1),
           format_fixed(sim_result->icn1.utilization, 3),
           format_fixed(sim_result->ecn1.utilization, 3),
           format_fixed(sim_result->icn2.utilization, 3)});
    }
    std::cout << table;

    const LatencyDistribution dist = latency_distribution(mva);
    std::printf("\npercentiles (ms)  p50      p95      p99\n");
    std::printf("  model           %-8.3f %-8.3f %-8.3f\n",
                units::us_to_ms(dist.p50_us()), units::us_to_ms(dist.p95_us()),
                units::us_to_ms(dist.p99_us()));
    if (sim_result) {
      std::printf("  simulation      %-8.3f %-8.3f %-8.3f\n",
                  units::us_to_ms(sim_result->p50_latency_us),
                  units::us_to_ms(sim_result->p95_latency_us),
                  units::us_to_ms(sim_result->p99_latency_us));
    }
    if (!dist.reliable) {
      std::printf(
          "  (a traversed centre runs above 90%% utilisation: the\n"
          "   exponential-sojourn percentile model overstates the spread\n"
          "   there — trust the simulation row)\n");
    }

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      JsonWriter json;
      json.begin_object();
      json.key("config");
      write_json(json, config);
      json.key("paper_fixed_point");
      write_json(json, open);
      json.key("exact_mva");
      write_json(json, mva);
      json.end_object();
      std::ofstream out(json_path);
      require(out.good(), "cannot write '" + json_path + "'");
      out << json.str() << "\n";
      std::printf("\nJSON record written to %s\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
