// Cluster-of-Clusters demo — the paper's future-work extension made
// concrete: an LLNL-style conglomerate of four unequal clusters (the
// paper cites MCR / ALC / Thunder / PVC) with different sizes, network
// technologies, and generation rates. The heterogeneous analytical model
// predicts per-cluster and overall latency; the simulator validates it.
//
//   $ ./cluster_of_clusters_demo

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

int main() {
  using namespace hmcs;
  using namespace hmcs::analytic;

  try {
    // Four clusters loosely modelled on the LLNL conglomerate the paper
    // cites: two large compute clusters, one premium-interconnect
    // cluster, one small visualisation cluster.
    ClusterSpec mcr;
    mcr.nodes = 96;
    mcr.icn1 = gigabit_ethernet();
    mcr.ecn1 = fast_ethernet();
    mcr.generation_rate_per_us = units::per_s_to_per_us(60.0);

    ClusterSpec alc = mcr;
    alc.nodes = 64;

    ClusterSpec thunder;
    thunder.nodes = 64;
    thunder.icn1 = myrinet();
    thunder.ecn1 = gigabit_ethernet();
    thunder.generation_rate_per_us = units::per_s_to_per_us(120.0);

    ClusterSpec pvc;
    pvc.nodes = 32;
    pvc.icn1 = fast_ethernet();
    pvc.ecn1 = fast_ethernet();
    pvc.generation_rate_per_us = units::per_s_to_per_us(30.0);

    ClusterOfClustersConfig config;
    config.clusters = {mcr, alc, thunder, pvc};
    config.icn2 = gigabit_ethernet();
    config.switch_params = {24, 10.0};
    config.architecture = NetworkArchitecture::kNonBlocking;
    config.message_bytes = 1024.0;

    const HeteroLatencyPrediction prediction =
        predict_cluster_of_clusters(config);

    const char* names[] = {"MCR-like", "ALC-like", "Thunder-like", "PVC-like"};
    std::printf("cluster-of-clusters: %llu nodes in %zu clusters\n\n",
                static_cast<unsigned long long>(config.total_nodes()),
                config.clusters.size());

    Table table({"cluster", "nodes", "ICN1", "rate (msg/s)",
                 "source latency (ms)", "ICN1 util", "ECN1 util"});
    for (std::size_t i = 0; i < config.clusters.size(); ++i) {
      table.add_row(
          {names[i], std::to_string(config.clusters[i].nodes),
           config.clusters[i].icn1.name,
           format_fixed(
               units::per_us_to_per_s(config.clusters[i].generation_rate_per_us),
               0),
           format_fixed(units::us_to_ms(prediction.per_cluster_latency_us[i]), 3),
           format_fixed(prediction.icn1[i].utilization, 3),
           format_fixed(prediction.ecn1[i].utilization, 3)});
    }
    std::cout << table;
    std::printf("\nICN2 utilization          : %.3f\n",
                prediction.icn2.utilization);
    std::printf("effective-rate scale (eq.7): %.3f\n",
                prediction.effective_rate_scale);
    std::printf("overall mean latency      : %.3f ms (open-network model)\n",
                units::us_to_ms(prediction.mean_latency_us));

    const HeteroLatencyPrediction amva =
        predict_cluster_of_clusters(config, HeteroSolver::kApproxMva);
    std::printf("overall mean latency      : %.3f ms (multi-class AMVA)\n",
                units::us_to_ms(amva.mean_latency_us));

    sim::SimOptions options;
    options.measured_messages = 20000;
    options.warmup_messages = 4000;
    options.seed = 2005;
    sim::MultiClusterSim simulator(config, options);
    const sim::SimResult result = simulator.run();
    std::printf("overall mean latency      : %.3f ms (simulation, "
                "95%% CI ±%.3f)\n",
                units::us_to_ms(result.mean_latency_us),
                units::us_to_ms(result.latency_ci.half_width));
    std::printf("model vs simulation       : %+.1f%%\n",
                100.0 *
                    (units::us_to_ms(prediction.mean_latency_us) -
                     units::us_to_ms(result.mean_latency_us)) /
                    units::us_to_ms(result.mean_latency_us));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
