// Trace explorer: attach a lifecycle trace to a short simulation run and
// print per-message timelines — the debugging workflow for anyone
// extending the simulator's routing or service logic.
//
//   $ ./trace_explorer [--messages 12] [--clusters 4] [--csv trace.csv]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;

  CliParser cli("trace_explorer", "message lifecycle timelines");
  cli.add_option("messages", "messages to trace", "12");
  cli.add_option("clusters", "cluster count", "4");
  cli.add_option("csv", "also dump the raw trace to this file", "");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto wanted = static_cast<std::uint64_t>(cli.get_int("messages"));
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));

    const analytic::SystemConfig config = analytic::paper_scenario(
        analytic::HeterogeneityCase::kCase1, clusters,
        analytic::NetworkArchitecture::kNonBlocking, 1024.0, 32, 1e-4);

    sim::SimOptions options;
    options.measured_messages = wanted;
    options.warmup_messages = 0;
    options.seed = 7;
    options.trace = std::make_shared<sim::TraceRecorder>(10000);
    sim::MultiClusterSim simulator(config, options);
    simulator.run();

    // Group events into per-message timelines. Slots are reused, so a
    // kGenerated event starts a fresh timeline.
    std::vector<std::vector<sim::TraceEvent>> timelines;
    std::map<std::uint64_t, std::size_t> open;  // slot -> timeline index
    for (const sim::TraceEvent& event : options.trace->events()) {
      if (event.kind == sim::TraceEventKind::kGenerated) {
        open[event.message_id] = timelines.size();
        timelines.emplace_back();
      }
      const auto it = open.find(event.message_id);
      if (it == open.end()) continue;  // truncated head
      timelines[it->second].push_back(event);
    }

    std::uint64_t shown = 0;
    for (const auto& timeline : timelines) {
      if (timeline.empty() ||
          timeline.back().kind != sim::TraceEventKind::kDelivered) {
        continue;  // still in flight when the run ended
      }
      const auto& head = timeline.front();
      const double t0 = head.time_us;
      std::printf("message: node %llu -> node %llu\n",
                  static_cast<unsigned long long>(head.source),
                  static_cast<unsigned long long>(head.destination));
      for (const auto& event : timeline) {
        std::printf("  +%9.1f us  %-9s %s\n", event.time_us - t0,
                    to_string(event.kind), event.center.c_str());
      }
      std::printf("  total: %.1f us\n\n", timeline.back().time_us - t0);
      if (++shown == wanted) break;
    }

    const std::string csv_path = cli.get_string("csv");
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      require(out.good(), "cannot write '" + csv_path + "'");
      out << options.trace->to_csv();
      std::printf("raw trace written to %s (%zu events%s)\n",
                  csv_path.c_str(), options.trace->events().size(),
                  options.trace->truncated() ? ", truncated" : "");
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
