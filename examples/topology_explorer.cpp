// Topology explorer: inspect the interconnect structures of Section 5
// for your own size and switch radix — stages, switch counts, bisection
// width (closed form and measured by max-flow on the wired instance),
// and hop statistics.
//
//   $ ./topology_explorer --nodes 64 --ports 8

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/topology/switch_tree.hpp"
#include "hmcs/topology/torus.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmcs;
  using topology::FatTree;
  using topology::LinearArray;
  using topology::SwitchTree;

  CliParser cli("topology_explorer", "inspect Section 5 interconnects");
  cli.add_option("nodes", "endpoint count", "64");
  cli.add_option("ports", "switch radix Pr", "8");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
    const auto ports = static_cast<std::uint32_t>(cli.get_int("ports"));

    const FatTree tree(nodes, ports);
    const LinearArray chain(nodes, ports);

    std::printf("N=%llu endpoints, Pr=%u-port switches\n\n",
                static_cast<unsigned long long>(nodes), ports);

    Table table({"topology", "stages", "switches", "bisection (closed form)",
                 "bisection (measured)", "avg hops", "worst hops",
                 "full bisection"});

    auto measured = [](const auto& topo) {
      const auto graph = topo.build_graph();
      return std::to_string(topology::measured_bisection_cables(graph));
    };

    table.add_row({"multi-stage fat-tree", std::to_string(tree.num_stages()),
                   std::to_string(tree.num_switches()),
                   std::to_string(tree.bisection_width()),
                   tree.is_uniform() ? measured(tree) : "(ragged wiring)",
                   format_fixed(tree.average_traversals(), 2),
                   std::to_string(tree.worst_case_traversals()),
                   "yes (Theorem 1)"});
    table.add_row({"linear switch array", "1",
                   std::to_string(chain.num_switches()),
                   std::to_string(chain.bisection_width()), measured(chain),
                   format_fixed(chain.average_traversals(), 2),
                   std::to_string(chain.num_switches()),
                   chain.is_full_bisection() ? "yes (single switch)" : "no"});

    // A 2D torus with a comparable endpoint count: the middle of the
    // bisection spectrum (paper's reference [20] family).
    std::uint32_t arity = 2;
    while (static_cast<std::uint64_t>(arity + 1) * (arity + 1) * 2 <= nodes &&
           arity < 64) {
      ++arity;
    }
    const topology::Torus torus(
        arity, 2,
        static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, nodes / (static_cast<std::uint64_t>(arity) * arity))));
    table.add_row(
        {std::to_string(arity) + "-ary 2-cube torus", "-",
         std::to_string(torus.num_switches()),
         std::to_string(torus.bisection_width()),
         std::to_string(
             topology::measured_bisection_cables(torus.build_graph())),
         format_fixed(torus.average_traversals(), 2),
         std::to_string(2ULL * (arity / 2) + 1),  // Lee diameter + 1
         "no"});
    std::cout << table;

    std::printf("\nfat-tree per-stage switch counts:");
    for (std::uint32_t s = 1; s <= tree.num_stages(); ++s) {
      std::printf(" stage %u: %llu", s,
                  static_cast<unsigned long long>(tree.switches_in_stage(s)));
    }
    std::printf("\n");

    // A reference binary switch tree at comparable leaf count, to echo
    // the paper's Section 5.1 example of a width-1 topology.
    std::uint32_t levels = 1;
    while ((1ULL << (levels - 1)) * ports < nodes && levels < 20) ++levels;
    const SwitchTree binary(levels, ports);
    std::printf(
        "\nreference binary switch tree (%u levels, %u endpoints/leaf): "
        "%llu endpoints, bisection width %llu\n",
        levels, ports, static_cast<unsigned long long>(binary.num_endpoints()),
        static_cast<unsigned long long>(binary.bisection_width()));
    std::printf(
        "(the paper, Section 5.1: 'the bisection width of a tree is 1')\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
