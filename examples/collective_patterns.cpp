// Collective-communication study: estimate the communication time of
// classic MPI collective patterns (ring all-reduce, all-to-all
// personalised exchange, binomial broadcast, master-worker scatter)
// running across a multi-cluster system, using the analytical model's
// per-message latency under the pattern's own sustained load.
//
// This is the workload the paper's introduction motivates ("a wide
// variety of parallel applications are being hosted on such systems"):
// the model turns a pattern's message count and size into an estimated
// phase time for each candidate system configuration.
//
//   $ ./collective_patterns [--ranks 256] [--bytes 4096]

#include <cmath>
#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

/// One collective pattern: how many sequential message steps a rank
/// performs and each step's payload, for P ranks moving `bytes` each.
struct Pattern {
  const char* name;
  double steps;        ///< sequential message rounds on the critical path
  double step_bytes;   ///< payload per round
};

std::vector<Pattern> patterns(double ranks, double bytes) {
  return {
      // Ring all-reduce: 2(P-1) rounds of (bytes/P) each.
      {"ring all-reduce", 2.0 * (ranks - 1.0), bytes / ranks},
      // Pairwise all-to-all: P-1 rounds of the full per-pair payload.
      {"all-to-all (pairwise)", ranks - 1.0, bytes},
      // Binomial broadcast: log2(P) rounds of the full payload.
      {"broadcast (binomial)", std::ceil(std::log2(ranks)), bytes},
      // Master scatter: P-1 sequential sends from one root.
      {"scatter (sequential root)", ranks - 1.0, bytes},
  };
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("collective_patterns",
                "communication-time estimates for MPI collectives");
  cli.add_option("ranks", "participating ranks (= nodes, divides 256)", "256");
  cli.add_option("bytes", "per-rank payload in bytes", "4096");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const double ranks = cli.get_double("ranks");
    const double bytes = cli.get_double("bytes");

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;

    std::printf("collectives across %g ranks, %g bytes per rank\n\n", ranks,
                bytes);
    for (const auto hetero :
         {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
      std::cout << "== " << to_string(hetero) << " ==\n";
      Table table({"pattern", "steps", "bytes/step", "C=4 (ms)", "C=16 (ms)",
                   "C=64 (ms)"});
      for (const Pattern& pattern : patterns(ranks, bytes)) {
        std::vector<std::string> row{
            pattern.name, format_compact(pattern.steps, 4),
            format_compact(pattern.step_bytes, 4)};
        for (const std::uint32_t clusters : {4u, 16u, 64u}) {
          // During the collective every rank is in a send/wait loop, so
          // the sustained per-node rate is one message per round trip:
          // approximate with a saturating offered rate and let the
          // closed-network model find the achievable latency.
          SystemConfig config = paper_scenario(
              hetero, clusters, NetworkArchitecture::kNonBlocking,
              std::max(pattern.step_bytes, 1.0), 256,
              units::per_s_to_per_us(1000.0));
          const LatencyPrediction prediction = predict_latency(config, mva);
          const double phase_us =
              pattern.steps * prediction.mean_latency_us;
          row.push_back(format_fixed(units::us_to_ms(phase_us), 2));
        }
        table.add_row(std::move(row));
      }
      std::cout << table << "\n";
    }
    std::cout << "(phase time = critical-path rounds x modelled per-message\n"
                 " latency at collective intensity; relative numbers guide\n"
                 " algorithm choice per interconnect, e.g. ring all-reduce's\n"
                 " small messages suit the slow-backbone Case 1, while\n"
                 " all-to-all punishes it)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
