// Capacity planning: given a deployed multi-cluster system, find the
// highest per-node message rate that still meets a latency SLA. Binary
// search over the analytical model, then validate the operating point
// with the discrete-event simulator.
//
//   $ ./capacity_planning [--clusters 8] [--sla-ms 2] [--bytes 1024]

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double predicted_latency_ms(SystemConfig config, double rate_per_us) {
  config.generation_rate_per_us = rate_per_us;
  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  return units::us_to_ms(predict_latency(config, mva).mean_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("capacity_planning",
                "maximum per-node rate meeting a latency SLA");
  cli.add_option("clusters", "cluster count (divides 256)", "8");
  cli.add_option("sla-ms", "latency SLA in milliseconds", "2");
  cli.add_option("bytes", "message size in bytes", "1024");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));
    const double sla_ms = cli.get_double("sla-ms");
    const double bytes = cli.get_double("bytes");

    const SystemConfig base = paper_scenario(
        HeterogeneityCase::kCase1, clusters,
        NetworkArchitecture::kNonBlocking, bytes);

    // Latency grows monotonically with the offered rate, so bisect.
    double lo = units::per_s_to_per_us(0.01);
    double hi = units::per_s_to_per_us(20000.0);
    if (predicted_latency_ms(base, lo) > sla_ms) {
      std::printf("SLA of %.2f ms is below the no-load latency (%.2f ms); "
                  "no feasible rate.\n",
                  sla_ms, predicted_latency_ms(base, lo));
      return 0;
    }
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (predicted_latency_ms(base, mid) <= sla_ms) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double capacity_per_us = lo;

    std::printf("system: %s, %s, C=%u, N0=%u, M=%.0fB\n",
                to_string(HeterogeneityCase::kCase1),
                to_string(base.architecture), clusters,
                base.nodes_per_cluster, bytes);
    std::printf("SLA: mean message latency <= %.2f ms\n\n", sla_ms);
    std::printf("max sustainable rate (model): %.1f msg/s per node "
                "(%.0f msg/s aggregate)\n",
                units::per_us_to_per_s(capacity_per_us),
                units::per_us_to_per_s(capacity_per_us) *
                    static_cast<double>(base.total_nodes()));

    // Validate the operating point and its neighbourhood by simulation.
    Table table({"rate (msg/s/node)", "model (ms)", "simulation (ms)",
                 "within SLA"});
    for (const double scale : {0.8, 1.0, 1.2}) {
      SystemConfig config = base;
      config.generation_rate_per_us = capacity_per_us * scale;
      const double model_ms =
          predicted_latency_ms(base, config.generation_rate_per_us);

      sim::SimOptions options;
      options.measured_messages = 10000;
      options.warmup_messages = 2000;
      options.seed = 77;
      sim::MultiClusterSim simulator(config, options);
      const double sim_ms = units::us_to_ms(simulator.run().mean_latency_us);
      table.add_row(
          {format_fixed(units::per_us_to_per_s(config.generation_rate_per_us), 1),
           format_fixed(model_ms, 3), format_fixed(sim_ms, 3),
           sim_ms <= sla_ms ? "yes" : "no"});
    }
    std::cout << "\n" << table;
    std::cout << "(80% of capacity comfortably meets the SLA, 120% breaks\n"
                 "it; the operating point itself sits on the SLA boundary\n"
                 "by construction, so simulation noise can land either side)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
