// Quickstart: describe a heterogeneous multi-cluster system, predict its
// mean message latency with the analytical model, and cross-check the
// prediction with the discrete-event simulator.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; see the other examples
// for design-space exploration and capacity planning.

#include <cstdio>
#include <iostream>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/units.hpp"

int main() {
  using namespace hmcs;
  try {
    // 1. Describe the system: 8 clusters of 32 nodes; fast intra-cluster
    //    network (Gigabit Ethernet), slower egress/backbone (Fast
    //    Ethernet); non-blocking fat-tree fabrics of 24-port switches.
    analytic::SystemConfig config;
    config.clusters = 8;
    config.nodes_per_cluster = 32;
    config.icn1 = analytic::gigabit_ethernet();
    config.ecn1 = analytic::fast_ethernet();
    config.icn2 = analytic::fast_ethernet();
    config.switch_params = {24, 10.0};
    config.architecture = analytic::NetworkArchitecture::kNonBlocking;
    config.message_bytes = 1024.0;
    config.generation_rate_per_us = units::per_s_to_per_us(250.0);

    // 2. Analytical prediction (microseconds in, microseconds out).
    const analytic::LatencyPrediction prediction =
        analytic::predict_latency(config);
    std::printf("analytical model\n");
    std::printf("  inter-cluster probability P  : %.4f\n",
                prediction.inter_cluster_probability);
    std::printf("  effective rate (msg/s/node)  : %.1f of %.1f offered\n",
                units::per_us_to_per_s(prediction.lambda_effective),
                units::per_us_to_per_s(prediction.lambda_offered));
    std::printf("  ICN1/ECN1/ICN2 utilization   : %.2f / %.2f / %.2f\n",
                prediction.icn1.utilization, prediction.ecn1.utilization,
                prediction.icn2.utilization);
    std::printf("  mean message latency         : %.3f ms\n",
                units::us_to_ms(prediction.mean_latency_us));

    // 3. Validate by simulation (the paper gathers 10,000 messages).
    sim::SimOptions options;
    options.measured_messages = 10000;
    options.warmup_messages = 2000;
    options.seed = 42;
    sim::MultiClusterSim simulator(config, options);
    const sim::SimResult result = simulator.run();
    std::printf("simulation\n");
    std::printf("  mean message latency         : %.3f ms  (95%% CI ±%.3f)\n",
                units::us_to_ms(result.mean_latency_us),
                units::us_to_ms(result.latency_ci.half_width));
    std::printf("  remote message fraction      : %.3f\n",
                result.remote_fraction);
    std::printf("  model vs simulation          : %+.1f%%\n",
                100.0 * (prediction.mean_latency_us - result.mean_latency_us) /
                    result.mean_latency_us);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
