// Sensitivity analysis (tornado table): perturb each model parameter by
// ±20% around a base configuration and rank them by latency impact —
// the "examining various parameters" use case of the paper's abstract,
// exercised through the exact-MVA solver so saturated regimes are
// handled correctly.
//
//   $ ./sensitivity_analysis [--clusters 8] [--lambda 100]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

double latency_ms(const SystemConfig& config) {
  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  return units::us_to_ms(predict_latency(config, mva).mean_latency_us);
}

struct Knob {
  const char* name;
  std::function<void(SystemConfig&, double factor)> apply;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("sensitivity_analysis",
                "tornado table: ±20% parameter perturbations");
  cli.add_option("clusters", "cluster count (divides 256)", "8");
  cli.add_option("lambda", "per-node rate in msg/s", "100");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto clusters = static_cast<std::uint32_t>(cli.get_int("clusters"));
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));

    const SystemConfig base = paper_scenario(
        HeterogeneityCase::kCase1, clusters,
        NetworkArchitecture::kNonBlocking, 1024.0, kPaperTotalNodes, rate);
    const double base_ms = latency_ms(base);

    const std::vector<Knob> knobs{
        {"ICN1 bandwidth",
         [](SystemConfig& c, double f) { c.icn1.bandwidth_bytes_per_us *= f; }},
        {"ECN1/ICN2 bandwidth",
         [](SystemConfig& c, double f) {
           c.ecn1.bandwidth_bytes_per_us *= f;
           c.icn2.bandwidth_bytes_per_us *= f;
         }},
        {"ICN1 latency",
         [](SystemConfig& c, double f) { c.icn1.latency_us *= f; }},
        {"ECN1/ICN2 latency",
         [](SystemConfig& c, double f) {
           c.ecn1.latency_us *= f;
           c.icn2.latency_us *= f;
         }},
        {"switch latency",
         [](SystemConfig& c, double f) { c.switch_params.latency_us *= f; }},
        {"message size",
         [](SystemConfig& c, double f) { c.message_bytes *= f; }},
        {"generation rate",
         [](SystemConfig& c, double f) { c.generation_rate_per_us *= f; }},
    };

    struct Row {
      const char* name;
      double low_ms;
      double high_ms;
      double swing;
    };
    std::vector<Row> rows;
    for (const Knob& knob : knobs) {
      SystemConfig low = base;
      knob.apply(low, 0.8);
      SystemConfig high = base;
      knob.apply(high, 1.2);
      const double low_ms = latency_ms(low);
      const double high_ms = latency_ms(high);
      rows.push_back(
          {knob.name, low_ms, high_ms, std::fabs(high_ms - low_ms)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.swing > b.swing; });

    std::printf("base: Case 1 non-blocking, C=%u, M=1024B, lambda=%.0f "
                "msg/s -> %.3f ms\n\n",
                clusters, units::per_us_to_per_s(rate), base_ms);
    Table table({"parameter (±20%)", "-20% (ms)", "+20% (ms)", "swing (ms)",
                 "swing / base"});
    for (const Row& row : rows) {
      table.add_row({row.name, format_fixed(row.low_ms, 3),
                     format_fixed(row.high_ms, 3), format_fixed(row.swing, 3),
                     format_fixed(row.swing / base_ms * 100.0, 1) + "%"});
    }
    std::cout << table;
    std::cout << "\n(rows sorted by impact — the tornado's spine. Under a\n"
                 " saturated FE backbone the egress/backbone bandwidth and\n"
                 " the offered rate dominate; switch latency barely moves\n"
                 " the needle. Exactly the design guidance the paper's\n"
                 " abstract promises from an analytical model.)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
