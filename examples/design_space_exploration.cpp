// Design-space exploration — the paper's motivating use case: "a
// performance model is a useful tool for exploring the design space and
// examining various parameters" (§1). Given a node budget and a latency
// target, sweep cluster counts, network technologies, and architectures
// as one declarative SweepSpec; price each design with a simple cost
// model; and report the cheapest configurations that meet the target.
// The analytical backend makes this a millisecond-scale sweep — the
// whole point of having it.
//
//   $ ./design_space_exploration [--nodes 256] [--target-ms 5]
//                                [--lambda 100] [--bytes 1024]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/cli.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace {

using namespace hmcs;
using namespace hmcs::analytic;

// Rough 2005-era street prices, per NIC and per switch (USD). Only the
// relative order matters for the example.
struct TechCost {
  NetworkTechnology tech;
  double nic_usd;
  double switch_usd;
};

double fabric_switches(std::uint64_t endpoints, std::uint32_t ports,
                       NetworkArchitecture arch) {
  if (endpoints <= 1) return 0.0;
  if (arch == NetworkArchitecture::kNonBlocking) {
    return static_cast<double>(topology::FatTree(endpoints, ports).num_switches());
  }
  return static_cast<double>(
      topology::LinearArray(endpoints, ports).num_switches());
}

double system_cost(const SystemConfig& config, const TechCost& icn1,
                   const TechCost& ecn, NetworkArchitecture arch) {
  const double nodes = static_cast<double>(config.total_nodes());
  const double clusters = config.clusters;
  // Each node has one ICN1 NIC and one ECN1 NIC (Figure 1: processors
  // reach the ECN directly).
  double cost = nodes * (icn1.nic_usd + ecn.nic_usd);
  cost += clusters * fabric_switches(config.nodes_per_cluster,
                                     config.switch_params.ports, arch) *
          icn1.switch_usd;
  cost += clusters * fabric_switches(config.nodes_per_cluster,
                                     config.switch_params.ports, arch) *
          ecn.switch_usd;
  cost += fabric_switches(config.clusters, config.switch_params.ports, arch) *
          ecn.switch_usd;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("design_space_exploration",
                "find the cheapest multi-cluster design meeting a latency "
                "target");
  cli.add_option("nodes", "total processor count", "256");
  cli.add_option("target-ms", "mean message latency target (ms)", "5");
  cli.add_option("lambda", "per-node rate in msg/s", "100");
  cli.add_option("bytes", "message size in bytes", "1024");
  try {
    if (!cli.parse(argc, argv)) {
      std::cout << cli.help_text();
      return 0;
    }
    const auto nodes = static_cast<std::uint32_t>(cli.get_uint("nodes"));
    const double target_ms = cli.get_double("target-ms");
    const double rate = units::per_s_to_per_us(cli.get_double("lambda"));
    const double bytes = cli.get_double("bytes");

    const std::vector<TechCost> costs = {
        {fast_ethernet(), 15.0, 700.0},
        {gigabit_ethernet(), 90.0, 3200.0},
        {myrinet(), 500.0, 12000.0},
    };

    // The design space as one declarative sweep: power-of-two cluster
    // counts dividing the node budget × every (icn1, ecn) technology
    // pairing × both architectures.
    runner::SweepSpec spec;
    spec.id = "dse";
    spec.total_nodes = nodes;
    for (std::uint32_t clusters = 1; clusters <= nodes; clusters *= 2) {
      if (nodes % clusters == 0) spec.axes.clusters.push_back(clusters);
    }
    for (const TechCost& icn1 : costs) {
      for (const TechCost& ecn : costs) {
        runner::TechnologyCase tech;
        tech.label = icn1.tech.name + "/" + ecn.tech.name;
        tech.icn1 = icn1.tech;
        tech.ecn1 = ecn.tech;
        tech.icn2 = ecn.tech;
        spec.axes.technologies.push_back(tech);
      }
    }
    spec.axes.lambda_per_us = {rate};
    spec.axes.message_bytes = {bytes};
    spec.axes.architectures = {NetworkArchitecture::kNonBlocking,
                               NetworkArchitecture::kBlocking};

    ModelOptions mva;
    mva.fixed_point.method = SourceThrottling::kExactMva;
    const runner::SweepResult result = runner::run_sweep(
        spec, {std::make_shared<runner::AnalyticBackend>(mva)});

    struct Design {
      std::string description;
      double latency_ms;
      double cost_usd;
      bool meets_target;
    };
    std::vector<Design> designs;
    designs.reserve(result.points.size());
    // Walk clusters-major (clusters → icn1 → ecn → architecture) so
    // equal-cost designs keep their historical display order under the
    // unstable sort below; the runner expanded technologies-major.
    const std::size_t n_clusters = spec.axes.clusters.size();
    const std::size_t n_arch = spec.axes.architectures.size();
    for (std::size_t c = 0; c < n_clusters; ++c) {
      for (std::size_t t = 0; t < spec.axes.technologies.size(); ++t) {
        for (std::size_t a = 0; a < n_arch; ++a) {
          const runner::SweepPoint& point =
              result.points[(t * n_clusters + c) * n_arch + a];
          const double latency_ms =
              units::us_to_ms(result.at(point.index, 0).mean_latency_us);
          const TechCost& icn1 = costs[point.technology_index / costs.size()];
          const TechCost& ecn = costs[point.technology_index % costs.size()];
          designs.push_back(Design{
              "C=" + std::to_string(point.clusters) + " " +
                  point.technology_label + " " +
                  (point.architecture == NetworkArchitecture::kNonBlocking
                       ? "fat-tree"
                       : "chain"),
              latency_ms,
              system_cost(point.config, icn1, ecn, point.architecture),
              latency_ms <= target_ms});
        }
      }
    }

    std::sort(designs.begin(), designs.end(),
              [](const Design& a, const Design& b) {
                if (a.meets_target != b.meets_target) return a.meets_target;
                return a.cost_usd < b.cost_usd;
              });

    std::printf("evaluated %zu designs for N=%u, target %.1f ms, "
                "lambda=%.0f msg/s\n\n",
                designs.size(), nodes, target_ms,
                units::per_us_to_per_s(rate));
    Table table({"design", "latency (ms)", "est. cost ($)", "meets target"});
    std::size_t shown = 0;
    for (const Design& design : designs) {
      table.add_row({design.description, format_fixed(design.latency_ms, 2),
                     format_fixed(design.cost_usd, 0),
                     design.meets_target ? "yes" : "no"});
      if (++shown == 12) break;
    }
    std::cout << table;
    std::cout << "\n(12 cheapest feasible designs first; the analytical\n"
                 "model evaluated the full space in milliseconds — the\n"
                 "paper's argument for analytical modelling over\n"
                 "simulation-only studies)\n";
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
